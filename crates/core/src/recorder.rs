//! The enforcement flight recorder: a bounded per-device ring of
//! structured enforcement events — the "black box" a violation report
//! replays when the oracle flags a flow.
//!
//! Counters say *how much* a device enforced; the ledger says *what
//! happened to this flow, in order*: the trigger that fired, the verdict
//! it armed, the residual window lapsing, stale-epoch enforcement after a
//! policy delta, conntrack GC reclamation, device restarts, and the
//! device observing a new policy epoch. Every event is stamped with
//! virtual time, the (direction-normalized) flow key where one applies,
//! the censor-profile name, and the policy epoch in force.
//!
//! Design constraints, in priority order:
//!
//! 1. **Steady-state packets record nothing.** Pass-verdict traffic — the
//!    hot path the `zero_alloc` test and the `obs/overhead_device_hop`
//!    budget guard — never touches the ring. Events exist only where the
//!    device already does cold work (arming a verdict, expiring one,
//!    restarting).
//! 2. **Bounded.** The ring holds [`DEFAULT_LEDGER_CAP`] events and
//!    overwrites the oldest; a blocked-flow soak cannot grow it.
//! 3. **Deterministic.** Events are ordered by a monotone sequence
//!    number; virtual time is the only clock. Renderings are
//!    byte-identical at every `TSPU_THREADS` setting.
//!
//! Like [`tspu_obs::Registry`], the recorder is a zero-sized no-op when
//! the `obs` feature is off; [`LedgerEvent`] and [`LedgerKind`] exist in
//! both shapes so call sites compile unchanged.

use crate::conntrack::FlowKey;

/// Default ring capacity, per device. Big enough that a scenario cell's
/// entire enforcement story fits; small enough that a million-flow soak's
/// per-device footprint stays a few KiB.
pub const DEFAULT_LEDGER_CAP: usize = 256;

/// What happened — one enforcement-relevant state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerKind {
    /// A trigger matched and survived the failure dice. `trigger` names
    /// the mechanism (`sni1`..`sni4`, `quic`, `http_host`, `dns`).
    TriggerFired { trigger: &'static str },
    /// A block verdict was installed (or refreshed) on the flow.
    BlockArmed { kind: &'static str },
    /// The flow's verdict lapsed (residual window expired) and was
    /// cleared.
    BlockExpired { kind: &'static str },
    /// The flow was enforced under a verdict pinned to an epoch older
    /// than the live policy — residual blocking across a registry delta.
    StaleEnforcement { kind: &'static str },
    /// Conntrack GC reclaimed `evicted` expired flows since the last
    /// ledger event (coalesced; the sweep itself is hot-path work).
    GcSweep { evicted: u64 },
    /// A scheduled restart wiped conntrack and the fragment cache.
    Restart,
    /// The device first observed a new policy epoch — a `PolicyDelta`
    /// (or hot reload) becoming visible to this box.
    EpochObserved,
}

impl LedgerKind {
    fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            LedgerKind::TriggerFired { trigger } => {
                let _ = write!(out, "trigger_fired source={trigger}");
            }
            LedgerKind::BlockArmed { kind } => {
                let _ = write!(out, "block_armed kind={kind}");
            }
            LedgerKind::BlockExpired { kind } => {
                let _ = write!(out, "block_expired kind={kind}");
            }
            LedgerKind::StaleEnforcement { kind } => {
                let _ = write!(out, "stale_enforcement kind={kind}");
            }
            LedgerKind::GcSweep { evicted } => {
                let _ = write!(out, "gc_sweep evicted={evicted}");
            }
            LedgerKind::Restart => out.push_str("restart"),
            LedgerKind::EpochObserved => out.push_str("epoch_observed"),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerEvent {
    /// Monotone per-device sequence number (never wraps; the ring does).
    pub seq: u64,
    /// Virtual time in microseconds.
    pub at_us: u64,
    /// The flow concerned, or `None` for device-wide events (restart,
    /// epoch observation, GC sweeps).
    pub flow: Option<FlowKey>,
    pub kind: LedgerKind,
    /// The censor profile the device was interpreting.
    pub profile: &'static str,
    /// The policy epoch in force when the event was recorded.
    pub epoch: u64,
}

impl LedgerEvent {
    /// Renders the event as one deterministic line, e.g.
    /// `[1234567us] #3 block_armed kind=rst_rewrite profile=tspu epoch=2 flow=10.0.0.1:40000<->93.184.216.34:443/tcp`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(out, "[{}us] #{} ", self.at_us, self.seq);
        self.kind.render(&mut out);
        let _ = write!(out, " profile={} epoch={}", self.profile, self.epoch);
        if let Some(flow) = &self.flow {
            let proto = match flow.protocol {
                6 => "tcp".to_string(),
                17 => "udp".to_string(),
                p => p.to_string(),
            };
            let _ = write!(
                out,
                " flow={}:{}<->{}:{}/{}",
                flow.local_addr, flow.local_port, flow.remote_addr, flow.remote_port, proto
            );
        }
        out
    }
}

#[cfg(feature = "obs")]
mod imp {
    use super::{LedgerEvent, LedgerKind, DEFAULT_LEDGER_CAP};
    use crate::conntrack::FlowKey;

    /// The recorder proper: a ring of the last `cap` events plus the
    /// state needed to coalesce GC sweeps and detect epoch changes.
    #[derive(Debug, Clone)]
    pub struct FlightRecorder {
        /// Next sequence number; `seq % cap` is the next ring slot.
        seq: u64,
        cap: usize,
        ring: Vec<LedgerEvent>,
        /// Last policy epoch this device observed; [`FlightRecorder::note_epoch`]
        /// records only transitions.
        last_epoch: u64,
        /// GC eviction total at the last ledger event, for coalescing.
        last_evictions: u64,
    }

    impl FlightRecorder {
        /// A recorder with the default capacity, baselined at
        /// `initial_epoch` so the epoch in force at construction is not
        /// itself reported as a delta.
        pub fn new(initial_epoch: u64) -> FlightRecorder {
            FlightRecorder::with_capacity(DEFAULT_LEDGER_CAP, initial_epoch)
        }

        /// A recorder holding the last `cap` events (`cap` ≥ 1 enforced).
        pub fn with_capacity(cap: usize, initial_epoch: u64) -> FlightRecorder {
            FlightRecorder {
                seq: 0,
                cap: cap.max(1),
                ring: Vec::new(),
                last_epoch: initial_epoch,
                last_evictions: 0,
            }
        }

        /// Ring capacity in events.
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Events currently held (≤ capacity).
        pub fn len(&self) -> usize {
            self.ring.len()
        }

        /// True when nothing has been recorded (or everything was reset).
        pub fn is_empty(&self) -> bool {
            self.ring.is_empty()
        }

        /// Total events ever recorded (wrapped-out ones included).
        pub fn recorded(&self) -> u64 {
            self.seq
        }

        /// Records one event. The ring allocates lazily on the first
        /// event and overwrites the oldest slot once full.
        pub fn record(
            &mut self,
            at_us: u64,
            flow: Option<FlowKey>,
            kind: LedgerKind,
            profile: &'static str,
            epoch: u64,
        ) {
            let event = LedgerEvent { seq: self.seq, at_us, flow, kind, profile, epoch };
            if self.ring.len() < self.cap {
                if self.ring.capacity() == 0 {
                    self.ring.reserve_exact(self.cap);
                }
                self.ring.push(event);
            } else {
                let slot = (self.seq % self.cap as u64) as usize;
                self.ring[slot] = event;
            }
            self.seq += 1;
        }

        /// Records an [`LedgerKind::EpochObserved`] event iff `epoch`
        /// differs from the last observed one — the per-packet cost on
        /// the steady state is this one comparison.
        #[inline]
        pub fn note_epoch(&mut self, at_us: u64, epoch: u64, profile: &'static str) {
            if epoch != self.last_epoch {
                self.last_epoch = epoch;
                self.record(at_us, None, LedgerKind::EpochObserved, profile, epoch);
            }
        }

        /// Coalesces conntrack GC activity: given the tracker's running
        /// eviction total, records one [`LedgerKind::GcSweep`] covering
        /// everything reclaimed since the previous ledger event. Called
        /// from cold enforcement paths only.
        pub fn sync_gc(&mut self, at_us: u64, evictions: u64, profile: &'static str, epoch: u64) {
            if evictions > self.last_evictions {
                let evicted = evictions - self.last_evictions;
                self.last_evictions = evictions;
                self.record(at_us, None, LedgerKind::GcSweep { evicted }, profile, epoch);
            }
        }

        /// Re-baselines the epoch detector — used when a forked device is
        /// pointed at a different policy handle, whose current epoch must
        /// not read as a delta.
        pub fn rebase_epoch(&mut self, epoch: u64) {
            self.last_epoch = epoch;
        }

        /// Events oldest-first (ring unrolled in sequence order).
        pub fn events(&self) -> Vec<LedgerEvent> {
            let mut out = self.ring.clone();
            out.sort_by_key(|e| e.seq);
            out
        }

        /// The last `n` events concerning `flow` (device-wide events
        /// included — a restart or epoch change is part of any flow's
        /// story), rendered oldest-first.
        pub fn for_flow(&self, flow: &FlowKey, n: usize) -> Vec<String> {
            let mut hits: Vec<&LedgerEvent> = self
                .ring
                .iter()
                .filter(|e| e.flow.is_none() || e.flow.as_ref() == Some(flow))
                .collect();
            hits.sort_by_key(|e| e.seq);
            let skip = hits.len().saturating_sub(n);
            hits[skip..].iter().map(|e| e.render()).collect()
        }

        /// A clean copy for a forked device: same capacity and epoch
        /// baseline, empty ring, eviction baseline zeroed (the fork's
        /// conntrack starts empty).
        pub fn fork_reset(&self) -> FlightRecorder {
            FlightRecorder {
                seq: 0,
                cap: self.cap,
                ring: Vec::new(),
                last_epoch: self.last_epoch,
                last_evictions: 0,
            }
        }
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    use super::{LedgerEvent, LedgerKind};
    use crate::conntrack::FlowKey;

    /// Obs-disabled shape: zero-sized, every method an empty inline body,
    /// so instrumented call sites compile to the uninstrumented code.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct FlightRecorder();

    impl FlightRecorder {
        pub fn new(_initial_epoch: u64) -> FlightRecorder {
            FlightRecorder()
        }
        pub fn with_capacity(_cap: usize, _initial_epoch: u64) -> FlightRecorder {
            FlightRecorder()
        }
        pub fn capacity(&self) -> usize {
            0
        }
        pub fn len(&self) -> usize {
            0
        }
        pub fn is_empty(&self) -> bool {
            true
        }
        pub fn recorded(&self) -> u64 {
            0
        }
        #[inline]
        pub fn record(
            &mut self,
            _at_us: u64,
            _flow: Option<FlowKey>,
            _kind: LedgerKind,
            _profile: &'static str,
            _epoch: u64,
        ) {
        }
        #[inline]
        pub fn note_epoch(&mut self, _at_us: u64, _epoch: u64, _profile: &'static str) {}
        #[inline]
        pub fn sync_gc(&mut self, _at_us: u64, _evictions: u64, _profile: &'static str, _epoch: u64) {}
        pub fn rebase_epoch(&mut self, _epoch: u64) {}
        pub fn events(&self) -> Vec<LedgerEvent> {
            Vec::new()
        }
        pub fn for_flow(&self, _flow: &FlowKey, _n: usize) -> Vec<String> {
            Vec::new()
        }
        pub fn fork_reset(&self) -> FlightRecorder {
            FlightRecorder()
        }
    }
}

pub use imp::FlightRecorder;

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn flow(port: u16) -> FlowKey {
        FlowKey {
            local_addr: Ipv4Addr::new(10, 0, 0, 1),
            local_port: port,
            remote_addr: Ipv4Addr::new(93, 184, 216, 34),
            remote_port: 443,
            protocol: 6,
        }
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_the_newest() {
        let mut rec = FlightRecorder::with_capacity(4, 0);
        for i in 0..10u64 {
            rec.record(i, Some(flow(1000 + i as u16)), LedgerKind::Restart, "tspu", 0);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.recorded(), 10);
        let seqs: Vec<u64> = rec.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn for_flow_filters_but_keeps_device_wide_events() {
        let mut rec = FlightRecorder::new(0);
        rec.record(1, Some(flow(1)), LedgerKind::TriggerFired { trigger: "sni1" }, "tspu", 0);
        rec.record(2, Some(flow(2)), LedgerKind::TriggerFired { trigger: "sni2" }, "tspu", 0);
        rec.record(3, None, LedgerKind::Restart, "tspu", 0);
        rec.record(4, Some(flow(1)), LedgerKind::BlockArmed { kind: "rst_rewrite" }, "tspu", 0);
        let lines = rec.for_flow(&flow(1), 8);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("trigger_fired source=sni1"));
        assert!(lines[1].contains("restart"));
        assert!(lines[2].contains("block_armed kind=rst_rewrite"));
        // Last-N truncation keeps the newest.
        let last = rec.for_flow(&flow(1), 1);
        assert_eq!(last.len(), 1);
        assert!(last[0].contains("block_armed"));
    }

    #[test]
    fn fork_reset_clears_events_and_keeps_layout() {
        let mut rec = FlightRecorder::with_capacity(8, 5);
        rec.record(1, None, LedgerKind::Restart, "tspu", 5);
        let forked = rec.fork_reset();
        assert_eq!(forked.capacity(), 8);
        assert!(forked.is_empty());
        assert_eq!(forked.recorded(), 0);
        // The epoch baseline survives the fork: re-observing epoch 5 is
        // not a delta, epoch 6 is.
        let mut forked = forked;
        forked.note_epoch(10, 5, "tspu");
        assert!(forked.is_empty());
        forked.note_epoch(11, 6, "tspu");
        assert_eq!(forked.len(), 1);
        assert_eq!(forked.events()[0].kind, LedgerKind::EpochObserved);
    }

    #[test]
    fn gc_sweeps_coalesce() {
        let mut rec = FlightRecorder::new(0);
        rec.sync_gc(5, 0, "tspu", 0);
        assert!(rec.is_empty());
        rec.sync_gc(6, 3, "tspu", 0);
        rec.sync_gc(7, 3, "tspu", 0);
        rec.sync_gc(8, 10, "tspu", 0);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, LedgerKind::GcSweep { evicted: 3 });
        assert_eq!(events[1].kind, LedgerKind::GcSweep { evicted: 7 });
    }

    #[test]
    fn rendering_is_stable() {
        let event = LedgerEvent {
            seq: 3,
            at_us: 1_234_567,
            flow: Some(flow(40000)),
            kind: LedgerKind::BlockArmed { kind: "rst_rewrite" },
            profile: "tspu",
            epoch: 2,
        };
        assert_eq!(
            event.render(),
            "[1234567us] #3 block_armed kind=rst_rewrite profile=tspu epoch=2 \
             flow=10.0.0.1:40000<->93.184.216.34:443/tcp"
        );
    }
}
