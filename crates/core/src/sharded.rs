//! A sharded flow table: the [`ConnTracker`] scaled to a million tracked
//! flows per device.
//!
//! ## Why shard
//!
//! One [`ConnTracker`] holding 10⁶ flows has two scale problems the paper's
//! fourteen-packet scenarios never exposed. First, its hash table grows by
//! doubling: the insert that crosses the threshold rehashes the entire
//! table on the packet path — a multi-millisecond pause at a million
//! entries, exactly the kind of cliff the tail-latency floors in
//! bench_smoke forbid. Second, its CLOCK ring is one queue: reclamation
//! latency for an expired entry scales with the *total* population, so a
//! burst of short flows can starve behind a sea of long-lived ones.
//!
//! Sharding by flow-key hash fixes both with no semantic change. Each of
//! the power-of-two shards is a complete, independent [`ConnTracker`] —
//! its own table, its own ring, its own [`GC_PROBE_BUDGET`]-bounded sweep
//! — sized to `capacity / shards`, so any rehash that does happen touches
//! 1/n of the population, and GC pressure in one shard cannot defer
//! reclamation in another.
//!
//! ## Equivalence with the unsharded tracker
//!
//! Expiry in [`ConnTracker`] is *semantically lazy*: every access checks
//! [`FlowEntry::expired`] against `now`, and the CLOCK sweep only decides
//! when memory is reclaimed, never what an access observes. A flow key
//! always maps to the same shard, so the sequence of observe/get/remove
//! calls a given flow experiences is identical whether there is one shard
//! or sixty-four; only `gc_probes()` (how much sweeping happened) and the
//! timing of physical removal differ. The differential proptest in
//! `tests/sharded_differential.rs` pins this: arbitrary interleaved
//! observe/expire/clear sequences produce observation-for-observation
//! identical results at 1, 4, and 16 shards.

use tspu_netsim::Time;
use tspu_wire::tcp::TcpFlags;

use crate::conntrack::{ConnTracker, FlowEntry, FlowKey, Side};
use crate::fasthash::FxHasher;
use std::hash::{Hash, Hasher};

/// Hard cap on shard count: beyond this the per-shard tables are small
/// enough that more shards only add fixed overhead.
pub const MAX_SHARDS: usize = 64;

/// Target live flows per shard when a capacity is auto-sharded — chosen so
/// a shard's table stays within a few MiB and a worst-case shard rehash
/// stays under the tail-latency floors.
pub const FLOWS_PER_SHARD: usize = 65_536;

/// A power-of-two array of independent [`ConnTracker`]s, addressed by flow
/// -key hash. See the module docs for the equivalence argument.
pub struct ShardedConnTracker {
    shards: Vec<ConnTracker>,
    /// `shards.len() - 1`; shard index is `hash & mask`.
    mask: u64,
}

impl Default for ShardedConnTracker {
    fn default() -> Self {
        ShardedConnTracker::new()
    }
}

impl ShardedConnTracker {
    /// A single-shard tracker — byte-for-byte the plain [`ConnTracker`],
    /// including its `gc_probes` accounting.
    pub fn new() -> ShardedConnTracker {
        ShardedConnTracker::with_shards(1)
    }

    /// A tracker with `shards` shards (rounded up to a power of two and
    /// clamped to `[1, MAX_SHARDS]`), no capacity pre-reserved.
    pub fn with_shards(shards: usize) -> ShardedConnTracker {
        let n = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        ShardedConnTracker {
            shards: (0..n).map(|_| ConnTracker::new()).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// A tracker provisioned for `capacity` total live flows, auto-sharded
    /// at [`FLOWS_PER_SHARD`]: each shard pre-reserves its slice, so the
    /// whole population inserts without a single rehash anywhere.
    pub fn with_capacity(capacity: usize) -> ShardedConnTracker {
        let shards = capacity.div_ceil(FLOWS_PER_SHARD).max(1);
        ShardedConnTracker::with_capacity_and_shards(capacity, shards)
    }

    /// A tracker with both knobs explicit.
    pub fn with_capacity_and_shards(capacity: usize, shards: usize) -> ShardedConnTracker {
        let n = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        let per_shard = capacity.div_ceil(n);
        ShardedConnTracker {
            shards: (0..n).map(|_| ConnTracker::with_capacity(per_shard)).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_index(&self, key: &FlowKey) -> usize {
        // Single-shard trackers (every device that never opted into a
        // million-flow capacity) must not pay a per-packet key hash just
        // to select shard 0 — the device hot-path budget is ~50 ns total.
        if self.mask == 0 {
            return 0;
        }
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        (hasher.finish() & self.mask) as usize
    }

    #[inline]
    fn shard_for(&self, key: &FlowKey) -> &ConnTracker {
        &self.shards[self.shard_index(key)]
    }

    #[inline]
    fn shard_for_mut(&mut self, key: &FlowKey) -> &mut ConnTracker {
        let idx = self.shard_index(key);
        &mut self.shards[idx]
    }

    /// Total live entries (including expired-but-unswept) across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(ConnTracker::len).sum()
    }

    /// True when no flows are tracked anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(ConnTracker::is_empty)
    }

    /// Read-only view of a flow, expiry-checked.
    #[inline]
    pub fn get(&self, now: Time, key: &FlowKey) -> Option<&FlowEntry> {
        self.shard_for(key).get(now, key)
    }

    /// Mutable view of a flow, expiry-checked.
    #[inline]
    pub fn get_mut(&mut self, now: Time, key: &FlowKey) -> Option<&mut FlowEntry> {
        self.shard_for_mut(key).get_mut(now, key)
    }

    /// Removes a flow.
    pub fn remove(&mut self, key: &FlowKey) {
        self.shard_for_mut(key).remove(key);
    }

    /// Live flows still enforcing a verdict installed under a policy epoch
    /// older than `epoch`, summed across shards.
    pub fn blocks_pinned_before(&self, now: Time, epoch: u64) -> usize {
        self.shards.iter().map(|s| s.blocks_pinned_before(now, epoch)).sum()
    }

    /// Drops every tracked flow in every shard, keeping provisioned
    /// capacity — the device-restart semantics of [`ConnTracker::clear`].
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// Observes a TCP packet; the owning shard runs its bounded GC step,
    /// so per-packet reclamation work is ≤ [`crate::conntrack::GC_PROBE_BUDGET`]
    /// probes regardless of total population.
    #[inline]
    pub fn observe_tcp(
        &mut self,
        now: Time,
        key: FlowKey,
        side: Side,
        flags: TcpFlags,
        payload_len: usize,
    ) -> &mut FlowEntry {
        let idx = self.shard_index(&key);
        self.shards[idx].observe_tcp(now, key, side, flags, payload_len)
    }

    /// Observes a UDP packet (QUIC verdict state).
    #[inline]
    pub fn observe_udp(&mut self, now: Time, key: FlowKey, side: Side) -> &mut FlowEntry {
        let idx = self.shard_index(&key);
        self.shards[idx].observe_udp(now, key, side)
    }

    /// Total ring slots probed by GC across shards (telemetry).
    pub fn gc_probes(&self) -> u64 {
        self.shards.iter().map(ConnTracker::gc_probes).sum()
    }

    /// Total expired entries reclaimed by GC across shards (telemetry;
    /// mirrored into the flight-recorder ledger as `gc_sweep` events).
    pub fn gc_evictions(&self) -> u64 {
        self.shards.iter().map(ConnTracker::gc_evictions).sum()
    }

    /// Per-shard live-entry counts — the occupancy histogram the load
    /// report emits to show the hash is spreading the population.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(ConnTracker::len).collect()
    }

    /// Allocated table capacity summed across shards.
    pub fn table_capacity(&self) -> usize {
        self.shards.iter().map(ConnTracker::table_capacity).sum()
    }

    /// Estimated bytes held by all shards' tables and rings (see
    /// [`ConnTracker::memory_bytes_estimate`]).
    pub fn memory_bytes_estimate(&self) -> usize {
        self.shards.iter().map(ConnTracker::memory_bytes_estimate).sum()
    }

    /// Maximum per-shard GC probe count — the figure the load soak holds
    /// against [`crate::conntrack::GC_PROBE_BUDGET`] × observations.
    pub fn max_shard_gc_probes(&self) -> u64 {
        self.shards.iter().map(ConnTracker::gc_probes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey {
            local_addr: Ipv4Addr::new(10, 0, 0, 5),
            local_port: port,
            remote_addr: Ipv4Addr::new(203, 0, 113, 5),
            remote_port: 443,
            protocol: 6,
        }
    }

    #[test]
    fn shard_count_rounds_and_clamps() {
        assert_eq!(ShardedConnTracker::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedConnTracker::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedConnTracker::with_shards(16).shard_count(), 16);
        assert_eq!(ShardedConnTracker::with_shards(1000).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn auto_sharding_scales_with_capacity() {
        assert_eq!(ShardedConnTracker::with_capacity(1_000).shard_count(), 1);
        assert_eq!(ShardedConnTracker::with_capacity(200_000).shard_count(), 4);
        assert_eq!(ShardedConnTracker::with_capacity(1_000_000).shard_count(), 16);
    }

    #[test]
    fn provisioned_shards_never_rehash_under_full_population() {
        let mut t = ShardedConnTracker::with_capacity(10_000);
        let caps_before = t.table_capacity();
        for i in 0..10_000u32 {
            let k = FlowKey {
                local_port: (i % 60_000) as u16,
                local_addr: Ipv4Addr::new(10, 0, (i >> 16) as u8, 1),
                ..key(0)
            };
            t.observe_tcp(Time::ZERO, k, Side::Local, TcpFlags::SYN, 0);
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.table_capacity(), caps_before);
    }

    #[test]
    fn population_spreads_across_shards() {
        let mut t = ShardedConnTracker::with_shards(16);
        for port in 0..16_000u16 {
            t.observe_tcp(Time::ZERO, key(port), Side::Local, TcpFlags::SYN, 0);
        }
        let lens = t.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 16_000);
        // FxHash over distinct ports should land every shard within 2× of
        // the mean; a dead shard means the mask is broken.
        assert!(lens.iter().all(|&l| l > 0 && l < 2_000), "skewed shards: {lens:?}");
    }

    #[test]
    fn same_key_always_same_shard() {
        let mut t = ShardedConnTracker::with_shards(8);
        t.observe_tcp(Time::ZERO, key(1234), Side::Local, TcpFlags::SYN, 0);
        assert_eq!(t.len(), 1);
        // Second observation of the same key transitions, not duplicates.
        t.observe_tcp(Time::ZERO, key(1234), Side::Remote, TcpFlags::SYN_ACK, 0);
        assert_eq!(t.len(), 1);
        assert!(t.get(Time::ZERO, &key(1234)).is_some());
        t.remove(&key(1234));
        assert!(t.is_empty());
    }
}
