//! Declarative censor profiles: everything country-specific about a
//! middlebox, factored out of the enforcement engine.
//!
//! [`crate::device::TspuDevice`] is now a general censor engine: conntrack,
//! fragment cache, policer, failure dice, and the trigger/verdict plumbing
//! are shared machinery, while a [`CensorProfile`] declares *which*
//! triggers fire (SNI, QUIC fingerprint, DNS qname, HTTP Host) and *how*
//! verdicts act (unidirectional vs bidirectional RST, silent drop,
//! HTTP-200 block-page injection, throttling) plus the residual-window
//! semantics. Three profiles ship:
//!
//! * [`CensorProfile::tspu`] — the paper's device, byte-identical to the
//!   pre-refactor model (pinned by `tests/profile_tspu_differential.rs`).
//! * [`CensorProfile::turkmenistan`] — few centralized chokepoints firing
//!   **bidirectional** RSTs on SNI and HTTP-Host triggers and residually
//!   dropping DNS flows that queried a blocked name (PAPERS.md:
//!   "Measuring and Evading Turkmenistan's Internet Censorship").
//! * [`CensorProfile::india`] — per-ISP middleboxes answering HTTP
//!   requests for blocked hosts with an injected HTTP 200 block page
//!   (PAPERS.md: India censorship study); SNI and QUIC untouched, no IP
//!   blocklist.
//!
//! All profiles interpret the same [`crate::policy::Policy`] domain lists,
//! so a differential campaign probes one universe against every country.

use std::sync::Arc;
use std::time::Duration;

use tspu_wire::http::HttpResponse;

use crate::behaviors::{BlockKind, EnforceDirections};
use crate::constants;

/// How (and whether) the profile inspects TLS ClientHello SNIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SniMode {
    /// No SNI inspection at all.
    Disabled,
    /// The TSPU's four-list engine (sni_rst / sni_slow / sni_throttle /
    /// sni_backup with role-dependent precedence, §5.2).
    TspuLists,
    /// A single blocklist (the policy's `sni_rst` list) arming one verdict
    /// kind with one residual window — the shape of a centralized
    /// chokepoint censor.
    SingleList { kind: BlockKind, window: Duration },
}

/// DNS-query trigger: a UDP/53 query whose qname is on the blocklist arms
/// a residual full-drop on the flow (and eats the query itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsFilter {
    /// Residual window of the installed drop verdict.
    pub window: Duration,
}

/// HTTP Host-header trigger: a TCP/80 request whose Host is on the
/// blocklist arms `kind` on the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpHostFilter {
    pub kind: BlockKind,
    /// Residual window of the installed verdict.
    pub window: Duration,
}

/// Everything country-specific about a censoring middlebox. Pure data plus
/// the block-page bytes; the engine in `device.rs` interprets it.
#[derive(Debug, Clone, PartialEq)]
pub struct CensorProfile {
    /// Name used in oracle audits, verdict matrices, and reports.
    pub name: &'static str,
    /// TLS SNI inspection mode.
    pub sni: SniMode,
    /// Whether the QUIC initial-packet fingerprint filter runs (it is
    /// additionally gated by the policy's own `quic_filter` flag, which
    /// models the filter's 2021 activation date).
    pub quic_filter: bool,
    /// DNS qname trigger, if any.
    pub dns: Option<DnsFilter>,
    /// HTTP Host-header trigger, if any.
    pub http_host: Option<HttpHostFilter>,
    /// Which directions injection verdicts (RST rewrite) fire in.
    pub rst_directions: EnforceDirections,
    /// The HTTP 200 block page injected by `BlockKind::BlockPage`
    /// verdicts, as full response bytes (status line + headers + body).
    pub block_page: Option<Arc<[u8]>>,
    /// Whether the stateless IP blocklist is enforced.
    pub ip_blocking: bool,
}

impl CensorProfile {
    /// The paper's TSPU. Every field reproduces the pre-refactor device:
    /// the differential proptest pins this profile byte-for-byte against
    /// a reference reimplementation.
    pub fn tspu() -> CensorProfile {
        CensorProfile {
            name: "tspu",
            sni: SniMode::TspuLists,
            quic_filter: true,
            dns: None,
            http_host: None,
            rst_directions: EnforceDirections::ToLocal,
            block_page: None,
            ip_blocking: true,
        }
    }

    /// Turkmenistan: centralized chokepoints, bidirectional RST injection
    /// on SNI and HTTP-Host triggers, residual drops on DNS flows that
    /// queried a blocked name. No QUIC fingerprint filter.
    pub fn turkmenistan() -> CensorProfile {
        CensorProfile {
            name: "turkmenistan",
            sni: SniMode::SingleList { kind: BlockKind::RstRewrite, window: constants::BLOCK_TKM },
            quic_filter: false,
            dns: Some(DnsFilter { window: constants::BLOCK_TKM }),
            http_host: Some(HttpHostFilter {
                kind: BlockKind::RstRewrite,
                window: constants::BLOCK_TKM,
            }),
            rst_directions: EnforceDirections::Both,
            block_page: None,
            ip_blocking: true,
        }
    }

    /// India: heterogeneous per-ISP middleboxes injecting an HTTP 200
    /// block page in place of the server's response for blocked Hosts.
    /// No SNI engine, no QUIC filter, no IP blocklist — which is exactly
    /// what makes censorship leak across ISPs when one ISP's middlebox
    /// sits on another ISP's transit path.
    pub fn india() -> CensorProfile {
        CensorProfile {
            name: "india",
            sni: SniMode::Disabled,
            quic_filter: false,
            dns: None,
            http_host: Some(HttpHostFilter {
                kind: BlockKind::BlockPage,
                window: constants::BLOCK_PAGE,
            }),
            rst_directions: EnforceDirections::ToLocal,
            block_page: Some(india_block_page().into()),
            ip_blocking: false,
        }
    }

    /// The profile's block page as a byte slice, if it injects one.
    pub fn block_page_bytes(&self) -> Option<&[u8]> {
        self.block_page.as_deref()
    }
}

/// The canonical India block page (the DoT notice text the study observes,
/// served as a complete HTTP 200 response).
pub fn india_block_page() -> Vec<u8> {
    HttpResponse::ok(
        b"<html><head><title>Blocked</title></head><body>\
          Your requested URL has been blocked as per the directions \
          received from Department of Telecommunications, Government \
          of India.</body></html>",
    )
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tspu_profile_matches_pre_refactor_defaults() {
        let p = CensorProfile::tspu();
        assert_eq!(p.sni, SniMode::TspuLists);
        assert!(p.quic_filter && p.ip_blocking);
        assert!(p.dns.is_none() && p.http_host.is_none() && p.block_page.is_none());
        assert_eq!(p.rst_directions, EnforceDirections::ToLocal);
    }

    #[test]
    fn turkmenistan_is_bidirectional_on_three_triggers() {
        let p = CensorProfile::turkmenistan();
        assert_eq!(p.rst_directions, EnforceDirections::Both);
        assert!(matches!(p.sni, SniMode::SingleList { kind: BlockKind::RstRewrite, .. }));
        assert!(p.dns.is_some(), "DNS trigger");
        assert_eq!(p.http_host.unwrap().kind, BlockKind::RstRewrite);
        assert!(!p.quic_filter);
    }

    #[test]
    fn india_injects_a_parseable_block_page() {
        let p = CensorProfile::india();
        assert_eq!(p.http_host.unwrap().kind, BlockKind::BlockPage);
        let page = p.block_page_bytes().unwrap();
        let parsed = HttpResponse::parse(page).unwrap();
        assert_eq!(parsed.status, 200);
        assert!(String::from_utf8_lossy(&parsed.body).contains("Department of Telecommunications"));
        assert!(!p.ip_blocking, "leakage comes from transit, not address lists");
    }
}
