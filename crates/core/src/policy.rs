//! The central censorship policy and its distribution model.
//!
//! Roskomnadzor "orders, distributes, and controls" TSPU devices (§5.1);
//! the defining property the paper exploits to attribute blocking to the
//! TSPU is *uniformity*: every device in the country enforces the same
//! blocklists at the same moment, including "out-registry" resources that
//! individual ISPs do not block. We model this with a single [`Policy`]
//! value behind a shared [`PolicyHandle`]; every [`crate::TspuDevice`]
//! clones the handle, so a central update (e.g. the March 4, 2022 switch
//! from throttling to RST blocking) is observed by all devices at once.

use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

use tspu_obs::{CounterId, GaugeId, Registry, Snapshot};

use crate::constants;
use crate::fasthash::FxHashMap;

/// Base of the polynomial suffix hash. Chosen so the hash of any suffix
/// of a hostname can be extended one byte leftward in O(1) — the property
/// [`DomainSet::matches_normalized`] uses to hash every candidate suffix
/// in a single backward pass.
const SUFFIX_HASH_BASE: u64 = 0x0100_0000_01b3;

/// Rolling-hash state while scanning a hostname right to left.
#[derive(Clone, Copy)]
struct SuffixHash {
    hash: u64,
    pow: u64,
}

impl SuffixHash {
    fn new() -> SuffixHash {
        SuffixHash { hash: 0, pow: 1 }
    }

    /// Extends the hashed suffix one byte to the left.
    #[inline]
    fn prepend(&mut self, byte: u8) {
        // +1 so a byte value of zero still advances the polynomial.
        self.hash = self.hash.wrapping_add(self.pow.wrapping_mul(u64::from(byte) + 1));
        self.pow = self.pow.wrapping_mul(SUFFIX_HASH_BASE);
    }
}

/// The suffix hash of a whole byte string (what [`SuffixHash`] yields
/// after prepending every byte right-to-left).
fn suffix_hash_of(bytes: &[u8]) -> u64 {
    let mut state = SuffixHash::new();
    for &b in bytes.iter().rev() {
        state.prepend(b);
    }
    state.hash
}

/// A hostname normalized the way [`DomainSet`] stores entries: ASCII
/// lowercase, one trailing dot stripped. Normalization happens once per
/// packet into a fixed stack buffer (no heap allocation for hostnames up
/// to 256 bytes — longer than any SNI the TSPU would see; a rare longer
/// name spills to the heap), and the result is shared by every list the
/// device consults via [`DomainSet::matches_normalized`].
pub struct NormalizedHost {
    stack: [u8; Self::STACK_CAPACITY],
    /// Heap fallback for hostnames longer than the stack buffer.
    spill: Option<Vec<u8>>,
    len: usize,
}

impl NormalizedHost {
    /// Longest hostname the stack buffer holds without heap fallback.
    pub const STACK_CAPACITY: usize = 256;

    /// Normalizes `hostname` (lowercase, one trailing dot stripped).
    pub fn new(hostname: &str) -> NormalizedHost {
        let src = hostname.as_bytes();
        let src = match src.split_last() {
            Some((b'.', head)) => head,
            _ => src,
        };
        if src.len() <= Self::STACK_CAPACITY {
            let mut stack = [0u8; Self::STACK_CAPACITY];
            for (dst, &b) in stack.iter_mut().zip(src) {
                *dst = b.to_ascii_lowercase();
            }
            NormalizedHost { stack, spill: None, len: src.len() }
        } else {
            let spill = src.iter().map(u8::to_ascii_lowercase).collect();
            NormalizedHost { stack: [0u8; Self::STACK_CAPACITY], spill: Some(spill), len: src.len() }
        }
    }

    /// The normalized bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        match &self.spill {
            Some(v) => v,
            None => &self.stack[..self.len],
        }
    }

    /// The normalized hostname as a string slice.
    pub fn as_str(&self) -> &str {
        // ASCII-lowercasing touches only bytes < 0x80, so the bytes stay
        // exactly as valid as the input `&str` they came from.
        std::str::from_utf8(self.as_bytes()).expect("lowercased UTF-8 stays valid")
    }
}

/// A set of domain names with suffix matching: `web.facebook.com` matches
/// an entry for `facebook.com` (the paper's blocklists name registrable
/// domains while SNIs carry full hostnames).
///
/// Entries are stored in buckets keyed by their [`suffix_hash_of`] value,
/// so a lookup walks the hostname once, right to left, hashing each
/// candidate suffix incrementally — no per-call allocation and no
/// re-scanning of the tail for each label level.
#[derive(Debug, Clone, Default)]
pub struct DomainSet {
    buckets: FxHashMap<u64, Vec<Box<str>>>,
    len: usize,
}

impl DomainSet {
    /// An empty set.
    pub fn new() -> DomainSet {
        DomainSet::default()
    }

    /// Builds a set from an iterator of domain names.
    pub fn from_names<I: IntoIterator<Item = S>, S: Into<String>>(domains: I) -> DomainSet {
        let mut set = DomainSet::new();
        for d in domains {
            set.insert(d);
        }
        set
    }

    /// Inserts a domain (normalized to lowercase, trailing dot stripped).
    pub fn insert<S: Into<String>>(&mut self, domain: S) {
        let mut d = domain.into().to_ascii_lowercase();
        if d.ends_with('.') {
            d.pop();
        }
        let bucket = self.buckets.entry(suffix_hash_of(d.as_bytes())).or_default();
        if !bucket.iter().any(|e| **e == *d) {
            bucket.push(d.into_boxed_str());
            self.len += 1;
        }
    }

    /// Removes a domain (normalized like [`DomainSet::insert`], so a
    /// delisting with a trailing dot still finds the stored entry).
    pub fn remove(&mut self, domain: &str) {
        let mut d = domain.to_ascii_lowercase();
        if d.ends_with('.') {
            d.pop();
        }
        let hash = suffix_hash_of(d.as_bytes());
        if let Some(bucket) = self.buckets.get_mut(&hash) {
            if let Some(pos) = bucket.iter().position(|e| **e == *d) {
                bucket.swap_remove(pos);
                self.len -= 1;
                if bucket.is_empty() {
                    self.buckets.remove(&hash);
                }
            }
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `hostname` equals an entry or is a subdomain of one.
    /// Never matches a bare TLD-style parent it does not contain.
    pub fn matches(&self, hostname: &str) -> bool {
        if self.len == 0 {
            return false;
        }
        self.matches_normalized(&NormalizedHost::new(hostname))
    }

    /// [`matches`](DomainSet::matches) against an already-normalized host
    /// — lets one normalization serve several list checks on the packet
    /// path.
    pub fn matches_normalized(&self, host: &NormalizedHost) -> bool {
        if self.len == 0 {
            return false;
        }
        let bytes = host.as_bytes();
        if bytes.is_empty() {
            return self.contains_suffix(SuffixHash::new().hash, bytes);
        }
        let mut state = SuffixHash::new();
        let mut dots_in_suffix = 0usize;
        let mut i = bytes.len();
        while i > 0 {
            i -= 1;
            let byte = bytes[i];
            state.prepend(byte);
            if byte == b'.' {
                dots_in_suffix += 1;
            }
            let at_label_boundary = i == 0 || bytes[i - 1] == b'.';
            if at_label_boundary {
                // Candidates are the full host plus every dotted suffix at
                // a label boundary; a bare final label ("com") is never a
                // candidate — the walk the HashSet version did explicitly.
                let qualifies = i == 0 || dots_in_suffix >= 1;
                if qualifies && self.contains_suffix(state.hash, &bytes[i..]) {
                    return true;
                }
            }
        }
        false
    }

    #[inline]
    fn contains_suffix(&self, hash: u64, suffix: &[u8]) -> bool {
        self.buckets
            .get(&hash)
            .is_some_and(|bucket| bucket.iter().any(|e| e.as_bytes() == suffix))
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.buckets.values().flatten().map(|s| &**s)
    }
}

/// Token-bucket parameters for the SNI-III throttling behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThrottleConfig {
    /// Sustained rate in bytes per second.
    pub rate_bytes_per_sec: u64,
    /// Bucket depth in bytes (must fit at least one MTU-sized packet for
    /// anything to pass at all).
    pub burst_bytes: u64,
}

impl ThrottleConfig {
    /// The Feb 26 – Mar 4, 2022 hard throttle (≈ 650 B/s).
    pub fn hard_2022() -> ThrottleConfig {
        ThrottleConfig { rate_bytes_per_sec: constants::THROTTLE_RATE_2022, burst_bytes: 1600 }
    }

    /// The March 2021 Twitter throttle (≈ 130 kbit/s).
    pub fn twitter_2021() -> ThrottleConfig {
        ThrottleConfig { rate_bytes_per_sec: constants::THROTTLE_RATE_2021, burst_bytes: 16_000 }
    }
}

/// The complete censorship policy a TSPU device enforces.
#[derive(Debug, Clone)]
pub struct Policy {
    /// SNI-I: RST/ACK response rewriting — "the vast majority of blocking".
    pub sni_rst: DomainSet,
    /// SNI-II: delayed symmetric drop; out-registry domains such as
    /// `play.google.com` and `nordvpn.com`.
    pub sni_slow: DomainSet,
    /// SNI-III: throttling (active only while `throttle_active`).
    pub sni_throttle: DomainSet,
    /// SNI-IV: backup full drop for a select subset of SNI-I targets
    /// (Facebook/Twitter/Instagram domains).
    pub sni_backup: DomainSet,
    /// Whether the QUIC version-1 filter is on (deployed March 4, 2022).
    pub quic_filter: bool,
    /// Out-registry IP blocking (Tor entry nodes, VPN endpoints, …).
    pub blocked_ips: HashSet<Ipv4Addr>,
    /// Throttle parameters for SNI-III.
    pub throttle: ThrottleConfig,
    /// Whether SNI-III throttling is currently in force (it was replaced
    /// by SNI-I RST blocking on March 4, 2022).
    pub throttle_active: bool,
    /// Monotone version counter, bumped on every registry update (each
    /// [`Policy::apply_delta`] and each [`PolicyHandle::update`]). Flow
    /// verdicts record the epoch they were installed under, so conntrack
    /// entries still enforcing a pre-delta decision can be audited.
    pub epoch: u64,
}

impl Default for Policy {
    fn default() -> Policy {
        Policy {
            sni_rst: DomainSet::new(),
            sni_slow: DomainSet::new(),
            sni_throttle: DomainSet::new(),
            sni_backup: DomainSet::new(),
            quic_filter: true,
            blocked_ips: HashSet::new(),
            throttle: ThrottleConfig::hard_2022(),
            throttle_active: false,
            epoch: 0,
        }
    }
}

impl Policy {
    /// An empty policy (blocks nothing, QUIC filter off).
    pub fn permissive() -> Policy {
        Policy { quic_filter: false, ..Policy::default() }
    }

    /// A small policy exercising every mechanism — used throughout tests
    /// and examples. Domain choices mirror Table 3.
    pub fn example() -> Policy {
        let mut policy = Policy::default();
        for d in [
            "twitter.com", "facebook.com", "instagram.com", "t.co", "twimg.com",
            "dw.com", "meduza.io", "bbc.com", "tor.eff.org", "theins.ru",
        ] {
            policy.sni_rst.insert(d);
        }
        for d in ["play.google.com", "news.google.com", "nordvpn.com", "nordaccount.com"] {
            policy.sni_slow.insert(d);
        }
        for d in ["twitter.com", "t.co", "twimg.com", "fbcdn.net"] {
            policy.sni_throttle.insert(d);
        }
        for d in ["twitter.com", "t.co", "twimg.com", "web.facebook.com", "cdninstagram.com", "messenger.com"] {
            policy.sni_backup.insert(d);
        }
        policy.blocked_ips.insert(Ipv4Addr::new(198, 51, 100, 7)); // "Tor entry node"
        policy
    }

    /// Applies a batched registry update in place and bumps the epoch.
    ///
    /// Each entry goes through the same [`DomainSet::insert`]/
    /// [`DomainSet::remove`] bucket maintenance a full compile would use,
    /// so matcher semantics are identical to rebuilding from scratch —
    /// the `policy_delta_differential` proptest pins this — but the cost
    /// is proportional to the delta, not to the ~100k domains already
    /// loaded (the `churn/delta_apply_ns` bench shows the gap).
    pub fn apply_delta(&mut self, delta: &PolicyDelta) {
        self.apply_delta_ops(delta);
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// The mutation half of [`Policy::apply_delta`], without the epoch
    /// bump — for callers (like [`PolicyHandle::update`]) that account
    /// for the epoch themselves.
    fn apply_delta_ops(&mut self, delta: &PolicyDelta) {
        for (list, names) in [
            (&mut self.sni_rst, &delta.add_rst),
            (&mut self.sni_slow, &delta.add_slow),
            (&mut self.sni_throttle, &delta.add_throttle),
            (&mut self.sni_backup, &delta.add_backup),
        ] {
            for name in names {
                list.insert(name.as_str());
            }
        }
        for (list, names) in [
            (&mut self.sni_rst, &delta.remove_rst),
            (&mut self.sni_slow, &delta.remove_slow),
            (&mut self.sni_throttle, &delta.remove_throttle),
            (&mut self.sni_backup, &delta.remove_backup),
        ] {
            for name in names {
                list.remove(name);
            }
        }
        for ip in &delta.block_ips {
            self.blocked_ips.insert(*ip);
        }
        for ip in &delta.unblock_ips {
            self.blocked_ips.remove(ip);
        }
        if let Some(on) = delta.quic_filter {
            self.quic_filter = on;
        }
        if let Some(on) = delta.throttle_active {
            self.throttle_active = on;
        }
    }
}

/// One batched, incremental registry update — the unit Roskomnadzor
/// distributes when the blocklist registry churns (§5's add/remove
/// batches). Applying a delta touches only the named entries; the rest of
/// the compiled policy (all its suffix-hash buckets) stays in place.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PolicyDelta {
    /// Domains added to SNI-I (RST/ACK rewrite).
    pub add_rst: Vec<String>,
    /// Domains removed from SNI-I.
    pub remove_rst: Vec<String>,
    /// Domains added to SNI-II (delayed symmetric drop).
    pub add_slow: Vec<String>,
    /// Domains removed from SNI-II.
    pub remove_slow: Vec<String>,
    /// Domains added to SNI-III (throttling).
    pub add_throttle: Vec<String>,
    /// Domains removed from SNI-III.
    pub remove_throttle: Vec<String>,
    /// Domains added to SNI-IV (backup full drop).
    pub add_backup: Vec<String>,
    /// Domains removed from SNI-IV.
    pub remove_backup: Vec<String>,
    /// IPs added to the address blocklist.
    pub block_ips: Vec<Ipv4Addr>,
    /// IPs removed from the address blocklist.
    pub unblock_ips: Vec<Ipv4Addr>,
    /// Toggles the QUIC version-1 filter when set.
    pub quic_filter: Option<bool>,
    /// Toggles SNI-III throttling when set.
    pub throttle_active: Option<bool>,
}

impl PolicyDelta {
    /// An empty delta (applying it only bumps the epoch).
    pub fn new() -> PolicyDelta {
        PolicyDelta::default()
    }

    /// A delta that moves `domains` onto the SNI-I RST blocklist — the
    /// most common registry event the paper observes.
    pub fn add_rst_batch<I, S>(domains: I) -> PolicyDelta
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PolicyDelta {
            add_rst: domains.into_iter().map(Into::into).collect(),
            ..PolicyDelta::default()
        }
    }

    /// True when the delta carries no operations at all.
    pub fn is_empty(&self) -> bool {
        self.op_count() == 0 && self.quic_filter.is_none() && self.throttle_active.is_none()
    }

    /// Number of list/IP operations carried (toggles not counted).
    pub fn op_count(&self) -> usize {
        self.add_rst.len()
            + self.remove_rst.len()
            + self.add_slow.len()
            + self.remove_slow.len()
            + self.add_throttle.len()
            + self.remove_throttle.len()
            + self.add_backup.len()
            + self.remove_backup.len()
            + self.block_ips.len()
            + self.unblock_ips.len()
    }
}

/// The shared handle's metric storage: a `tspu_obs` registry scope
/// (`policy.*`) with the update counter and the last-value epoch gauge
/// (merges keep the later cell's epoch, not the max). Zero-sized
/// registry in an obs-disabled build.
struct PolicyMetrics {
    registry: Registry,
    delta_applies: CounterId,
    epoch: GaugeId,
}

impl PolicyMetrics {
    fn new() -> PolicyMetrics {
        let mut registry = Registry::scoped("policy");
        PolicyMetrics {
            delta_applies: registry.counter("delta_applies"),
            epoch: registry.gauge_last("epoch"),
            registry,
        }
    }
}

/// A shared handle to the centrally controlled policy.
///
/// Cloning the handle models Roskomnadzor distributing the same list to
/// another device; mutating through any handle updates every device.
///
/// Backed by `Arc<RwLock<…>>` so the handle — and every device holding it —
/// is `Send`: parallel sweep workers each run their own simulation against
/// one shared, read-mostly policy without rebuilding the blocklists.
///
/// Every mutation through the handle — [`PolicyHandle::update`],
/// [`PolicyHandle::apply_delta`], the March 4 transition, chaos
/// hot-reloads — bumps [`Policy::epoch`] and moves the shared
/// `policy.delta_applies` counter / `policy.epoch` gauge, so central
/// updates are visible to metrics without any device cooperation.
#[derive(Clone)]
pub struct PolicyHandle {
    inner: Arc<RwLock<Policy>>,
    /// Mirror of [`Policy::epoch`], readable without the lock. The packet
    /// path validates per-flow verdict caches against the live epoch on
    /// every packet, so this must not cost a read-lock acquisition.
    epoch: Arc<AtomicU64>,
    metrics: Arc<Mutex<PolicyMetrics>>,
}

impl PolicyHandle {
    /// Wraps a policy for central distribution.
    pub fn new(policy: Policy) -> PolicyHandle {
        let epoch = policy.epoch;
        PolicyHandle {
            inner: Arc::new(RwLock::new(policy)),
            epoch: Arc::new(AtomicU64::new(epoch)),
            metrics: Arc::new(Mutex::new(PolicyMetrics::new())),
        }
    }

    /// Reads the current policy.
    pub fn read(&self) -> RwLockReadGuard<'_, Policy> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// The current policy epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Applies a centrally coordinated update — visible to all devices
    /// holding this handle, at once. Bumps the policy epoch and the
    /// `policy.delta_applies` counter (one bump per `update` call, however
    /// much the closure changes).
    pub fn update<F: FnOnce(&mut Policy)>(&self, f: F) {
        let epoch = {
            let mut policy = self.inner.write().unwrap_or_else(|e| e.into_inner());
            f(&mut policy);
            policy.epoch = policy.epoch.wrapping_add(1);
            policy.epoch
        };
        self.epoch.store(epoch, Ordering::Release);
        self.note_update(epoch);
    }

    /// Applies one incremental [`PolicyDelta`] through the shared handle:
    /// one write-lock hold, one epoch bump, one `policy.delta_applies`
    /// increment — the distribution event the churn engine replays.
    pub fn apply_delta(&self, delta: &PolicyDelta) {
        let epoch = {
            let mut policy = self.inner.write().unwrap_or_else(|e| e.into_inner());
            policy.apply_delta(delta);
            policy.epoch
        };
        self.epoch.store(epoch, Ordering::Release);
        self.note_update(epoch);
    }

    fn note_update(&self, epoch: u64) {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let id = metrics.delta_applies;
        metrics.registry.inc(id);
        let id = metrics.epoch;
        metrics.registry.set(id, epoch as i64);
    }

    /// The handle's metrics (`policy.delta_applies`, `policy.epoch`) as a
    /// [`Snapshot`] — merged into lab-level snapshots alongside the
    /// per-device scopes.
    pub fn obs_snapshot(&self) -> Snapshot {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner()).registry.snapshot()
    }

    /// The March 4, 2022 transition observed in §5.2: throttling (SNI-III)
    /// stops, the affected domains move to RST blocking (SNI-I), and the
    /// QUIC filter turns on.
    pub fn march_4_2022_transition(&self) {
        self.update(|p| {
            p.throttle_active = false;
            let throttled: Vec<String> = p.sni_throttle.iter().map(str::to_string).collect();
            for d in throttled {
                p.sni_rst.insert(d);
            }
            p.quic_filter = true;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_set_exact_and_suffix() {
        let set = DomainSet::from_names(["facebook.com", "t.co"]);
        assert!(set.matches("facebook.com"));
        assert!(set.matches("web.facebook.com"));
        assert!(set.matches("x.y.facebook.com"));
        assert!(set.matches("T.CO"));
        assert!(!set.matches("notfacebook.com"));
        assert!(!set.matches("facebook.com.evil.org"));
        assert!(!set.matches("com"));
        assert!(!set.matches(""));
    }

    #[test]
    fn domain_set_normalizes() {
        let mut set = DomainSet::new();
        set.insert("Example.COM.");
        assert!(set.matches("example.com"));
        assert!(set.matches("example.com."));
        assert_eq!(set.len(), 1);
        set.remove("example.com");
        assert!(set.is_empty());
    }

    #[test]
    fn suffix_match_stops_above_registrable_len() {
        // "co" must not be reachable as a parent of "t.co" matching "x.co":
        let set = DomainSet::from_names(["t.co"]);
        assert!(!set.matches("x.co"));
        assert!(set.matches("a.t.co"));
    }

    #[test]
    fn shared_policy_updates_are_uniform() {
        let handle_a = PolicyHandle::new(Policy::example());
        let handle_b = handle_a.clone(); // a second "device"
        assert!(!handle_b.read().sni_rst.matches("navalny.com"));
        handle_a.update(|p| p.sni_rst.insert("navalny.com"));
        assert!(handle_b.read().sni_rst.matches("navalny.com"));
    }

    #[test]
    fn march_4_transition_moves_throttled_to_rst() {
        let handle = PolicyHandle::new(Policy {
            throttle_active: true,
            quic_filter: false,
            ..Policy::example()
        });
        assert!(handle.read().throttle_active);
        assert!(!handle.read().sni_rst.matches("fbcdn.net"));
        handle.march_4_2022_transition();
        let policy = handle.read();
        assert!(!policy.throttle_active);
        assert!(policy.quic_filter);
        assert!(policy.sni_rst.matches("fbcdn.net"));
        assert!(policy.sni_rst.matches("cdn.fbcdn.net"));
    }

    #[test]
    fn apply_delta_matches_insert_remove_semantics() {
        let mut policy = Policy::example();
        let before = policy.epoch;
        let delta = PolicyDelta {
            add_rst: vec!["Navalny.COM.".into(), "ovdinfo.org".into()],
            remove_rst: vec!["dw.com".into()],
            block_ips: vec![Ipv4Addr::new(203, 0, 113, 9)],
            quic_filter: Some(false),
            ..PolicyDelta::default()
        };
        policy.apply_delta(&delta);
        assert_eq!(policy.epoch, before + 1);
        // Normalization matches DomainSet::insert (lowercase, trailing dot).
        assert!(policy.sni_rst.matches("www.navalny.com"));
        assert!(policy.sni_rst.matches("ovdinfo.org"));
        assert!(!policy.sni_rst.matches("dw.com"));
        assert!(policy.blocked_ips.contains(&Ipv4Addr::new(203, 0, 113, 9)));
        assert!(!policy.quic_filter);
    }

    #[test]
    fn delta_op_count_and_emptiness() {
        assert!(PolicyDelta::new().is_empty());
        let delta = PolicyDelta::add_rst_batch(["a.com", "b.com"]);
        assert!(!delta.is_empty());
        assert_eq!(delta.op_count(), 2);
        let toggle = PolicyDelta { throttle_active: Some(true), ..PolicyDelta::default() };
        assert!(!toggle.is_empty());
        assert_eq!(toggle.op_count(), 0);
    }

    #[test]
    fn handle_update_bumps_epoch_once_per_call() {
        let handle = PolicyHandle::new(Policy::example());
        assert_eq!(handle.epoch(), 0);
        handle.update(|p| {
            p.sni_rst.insert("one.example");
            p.sni_rst.insert("two.example");
        });
        assert_eq!(handle.epoch(), 1);
        handle.apply_delta(&PolicyDelta::add_rst_batch(["three.example"]));
        assert_eq!(handle.epoch(), 2);
        handle.march_4_2022_transition();
        assert_eq!(handle.epoch(), 3);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn handle_metrics_track_updates() {
        let handle = PolicyHandle::new(Policy::example());
        let clone = handle.clone(); // a second "device" shares the counter
        clone.apply_delta(&PolicyDelta::add_rst_batch(["x.example"]));
        handle.update(|p| p.quic_filter = false);
        let snap = handle.obs_snapshot();
        assert_eq!(snap.counter("policy.delta_applies"), 2);
        assert_eq!(snap.gauge("policy.epoch"), Some(2));
    }

    #[test]
    fn example_policy_shapes() {
        let policy = Policy::example();
        assert!(policy.sni_rst.matches("twitter.com"));
        assert!(policy.sni_backup.matches("twitter.com"));
        assert!(policy.sni_slow.matches("play.google.com"));
        // SNI-IV is a subset of SNI-I targets for the shared domains.
        assert!(policy.sni_rst.matches("web.facebook.com"));
    }
}
