//! The central policy updater as a simulated actor: Roskomnadzor's
//! distribution pipe, scheduled in virtual time.
//!
//! A [`PolicyUpdater`] holds a sorted list of `(offset, PolicyDelta)`
//! pairs and a shared [`crate::PolicyHandle`]. Installed on a host (any
//! host — it never sends packets) and bootstrapped with one
//! `Network::arm_timer` call, it wakes at each delta's virtual offset,
//! applies the delta through the handle (one epoch bump, one
//! `policy.delta_applies` increment), and records the application in a
//! shared [`DeltaApplication`] log the campaign reads back afterwards.
//!
//! Because every TSPU device holds a clone of the same handle, a delta is
//! visible to the whole country within the same virtual instant — the
//! centralized half of the paper's update-lag contrast. ISP DPI lag is
//! modeled separately (`tspu_topology::ispdpi`).

use std::sync::{Arc, Mutex};
use std::time::Duration;

use tspu_netsim::{Application, Output, Time};

use crate::policy::{PolicyDelta, PolicyHandle};

/// One applied delta, as recorded by the updater.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaApplication {
    /// Virtual instant the delta was applied.
    pub at: Time,
    /// The policy epoch after application.
    pub epoch: u64,
    /// Number of list/IP operations the delta carried.
    pub ops: usize,
}

/// Shared, append-only log of applied deltas.
pub type UpdateLog = Arc<Mutex<Vec<DeltaApplication>>>;

/// A netsim [`Application`] that fires policy deltas at scheduled virtual
/// offsets (measured from simulation start).
pub struct PolicyUpdater {
    policy: PolicyHandle,
    /// Sorted by offset.
    schedule: Vec<(Duration, PolicyDelta)>,
    next: usize,
    log: UpdateLog,
}

impl PolicyUpdater {
    /// Builds an updater over `schedule` (offset from simulation start →
    /// delta). The schedule is sorted by offset; ties apply in the given
    /// order within one timer tick.
    pub fn new(policy: PolicyHandle, mut schedule: Vec<(Duration, PolicyDelta)>) -> PolicyUpdater {
        schedule.sort_by_key(|(offset, _)| *offset);
        PolicyUpdater { policy, schedule, next: 0, log: Arc::new(Mutex::new(Vec::new())) }
    }

    /// The shared application log — clone before installing the updater
    /// into a network, read after the run.
    pub fn log(&self) -> UpdateLog {
        Arc::clone(&self.log)
    }

    /// The virtual offset of the first scheduled delta — what to
    /// `Network::arm_timer` with after `set_app`.
    pub fn first_offset(&self) -> Option<Duration> {
        self.schedule.first().map(|(offset, _)| *offset)
    }

    /// Number of deltas not yet applied.
    pub fn pending(&self) -> usize {
        self.schedule.len() - self.next
    }
}

impl Application for PolicyUpdater {
    fn on_packet(&mut self, _now: Time, _packet: &[u8]) -> Vec<Output> {
        Vec::new()
    }

    fn on_timer(&mut self, now: Time) -> Vec<Output> {
        let due = now.since(Time::ZERO);
        while let Some((offset, delta)) = self.schedule.get(self.next) {
            if *offset > due {
                break;
            }
            self.policy.apply_delta(delta);
            let record = DeltaApplication { at: now, epoch: self.policy.epoch(), ops: delta.op_count() };
            self.log.lock().unwrap_or_else(|e| e.into_inner()).push(record);
            self.next += 1;
        }
        match self.schedule.get(self.next) {
            Some((offset, _)) => vec![Output::Timer { delay: *offset - due }],
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    #[test]
    fn applies_deltas_in_offset_order() {
        let handle = PolicyHandle::new(Policy::permissive());
        let schedule = vec![
            (Duration::from_millis(400), PolicyDelta::add_rst_batch(["late.example"])),
            (Duration::from_millis(100), PolicyDelta::add_rst_batch(["early.example"])),
        ];
        let mut updater = PolicyUpdater::new(handle.clone(), schedule);
        let log = updater.log();
        assert_eq!(updater.first_offset(), Some(Duration::from_millis(100)));

        // First wake: only the early delta is due; the updater re-arms.
        let outputs = updater.on_timer(Time::ZERO + Duration::from_millis(100));
        assert_eq!(outputs, vec![Output::Timer { delay: Duration::from_millis(300) }]);
        assert!(handle.read().sni_rst.matches("early.example"));
        assert!(!handle.read().sni_rst.matches("late.example"));
        assert_eq!(updater.pending(), 1);

        // Second wake: done, no more timers.
        let outputs = updater.on_timer(Time::ZERO + Duration::from_millis(400));
        assert!(outputs.is_empty());
        assert!(handle.read().sni_rst.matches("late.example"));

        let log = log.lock().unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].at, Time::ZERO + Duration::from_millis(100));
        assert_eq!(log[0].epoch, 1);
        assert_eq!(log[1].epoch, 2);
    }

    #[test]
    fn packets_are_ignored() {
        let mut updater = PolicyUpdater::new(PolicyHandle::new(Policy::permissive()), Vec::new());
        assert!(updater.on_packet(Time::ZERO, &[0u8; 20]).is_empty());
        assert_eq!(updater.first_offset(), None);
    }
}
