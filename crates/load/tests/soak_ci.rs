//! CI soak: a 50k-flow population driven through one TSPU device, held to
//! the same determinism bar as the single-probe experiments.
//!
//! The CI `load` job runs this in release mode at `--test-threads={1,8}`
//! and `TSPU_THREADS={1,8}`: the deterministic report must be
//! byte-identical in every configuration, the per-flow policy oracle must
//! be clean, and conntrack GC must stay within its advertised per-packet
//! probe budget.

use std::time::Duration;

use tspu_core::conntrack::GC_PROBE_BUDGET;
use tspu_load::gen::LoadProfile;
use tspu_load::soak::{build_lab, SoakConfig};

fn ci_config() -> SoakConfig {
    SoakConfig {
        profile: LoadProfile {
            flows: 50_000,
            clients: 64,
            universe_domains: 100_000,
            span: Duration::from_secs(120),
            ..LoadProfile::default()
        },
        flow_capacity: 65_536,
        shards: Some(8),
        slice: Duration::from_millis(200),
    }
}

#[test]
fn fifty_k_flow_soak_is_deterministic_and_oracle_clean() {
    let lab = build_lab(ci_config());
    assert_eq!(lab.total_flows(), 50_000);

    // Two forks of the same lab: everything virtual-time derived must be
    // byte-identical. Wall-clock figures (pps, latency percentiles) are
    // deliberately outside the compared report.
    let first = lab.run();
    let second = lab.run();
    assert_eq!(
        first.deterministic_json(),
        second.deterministic_json(),
        "soak runs diverged across forks of one lab"
    );

    // Every flow launched, every flow completed.
    assert_eq!(first.stats.flows_started, 50_000);
    assert_eq!(first.stats.flows_completed, 50_000);

    // Policy oracle: a flow is RST iff its SNI matches the device's RST
    // set — zero tolerance, over all 50k lifecycles.
    assert_eq!(first.stats.oracle_mismatches, 0, "enforcement wrong under load");
    assert!(first.stats.resets > 0, "blocked mid-tail never sampled");
    assert!(first.stats.got_data > first.stats.resets, "clean head not dominant");

    // GC stays bounded per device-visible packet, aggregate and per-shard.
    assert!(
        first.gc_probes <= GC_PROBE_BUDGET as u64 * first.device_packets,
        "gc probes {} exceed budget ({} packets)",
        first.gc_probes,
        first.device_packets
    );
    assert!(
        first.max_shard_gc_probes <= GC_PROBE_BUDGET as u64 * first.device_packets,
        "one shard over-probed"
    );

    // The population is genuinely concurrent: arrivals span 120 s, well
    // under the Established idle timeout, so the tracker holds a large
    // share of all flows at the peak.
    assert!(
        first.peak_tracked_flows >= 25_000,
        "peak tracked {} — population not concurrent",
        first.peak_tracked_flows
    );

    // Occupancy spreads across shards: no shard is empty, none holds more
    // than half the final population.
    assert_eq!(first.shard_lens.len(), 8);
    let total: usize = first.shard_lens.iter().sum();
    if total > 1_000 {
        for (i, &len) in first.shard_lens.iter().enumerate() {
            assert!(len > 0, "shard {i} empty");
            assert!(len < total / 2 + total / 8, "shard {i} holds {len} of {total}");
        }
    }
}
