//! The soak driver: builds a population topology once, then runs forks of
//! it to a [`SoakReport`].
//!
//! Split into an expensive [`build_lab`] (domain universe, policy, route
//! interning, schedule expansion — all shareable) and a cheap
//! [`SoakLab::run`] that forks a pristine [`Network`] from the image,
//! attaches fresh apps, and drives the population to completion. Repeated
//! runs of the same lab are byte-identical in everything virtual-time
//! derived; only the wall-clock latency figures differ run to run, and
//! [`SoakReport::deterministic_json`] excludes exactly those.

use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tspu_core::conntrack::GC_PROBE_BUDGET;
use tspu_core::{Policy, PolicyHandle, TspuDevice};
use tspu_netsim::{Direction, MiddleboxHandle, Network, NetworkImage, Route, RouteStep, Time};
use tspu_obs::{Histogram, MetricValue, Snapshot, TimeSeries};
use tspu_registry::Universe;

use crate::gen::{
    build_schedule, ClientSchedule, LoadClientApp, LoadProfile, LoadServerApp, LoadStats,
};

/// Soak parameters beyond the traffic profile itself.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    pub profile: LoadProfile,
    /// Device flow-table provisioning ([`TspuDevice`] `with_flow_capacity`).
    pub flow_capacity: usize,
    /// Explicit conntrack shard count; `None` auto-sizes from capacity.
    pub shards: Option<usize>,
    /// Virtual-time slice per wall-latency sample.
    pub slice: Duration,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            profile: LoadProfile::default(),
            flow_capacity: 65_536,
            shards: None,
            slice: Duration::from_millis(200),
        }
    }
}

/// A reusable soak topology: image + schedules, fork-and-run any number
/// of times.
pub struct SoakLab {
    config: SoakConfig,
    image: NetworkImage,
    device: MiddleboxHandle<TspuDevice>,
    clients: Vec<(tspu_netsim::HostId, Ipv4Addr)>,
    server: tspu_netsim::HostId,
    server_addr: Ipv4Addr,
    schedules: Vec<ClientSchedule>,
    /// Fraction of the domain universe the policy blocks (telemetry).
    pub blocked_universe_fraction: f64,
}

/// One virtual-time slice of a soak run. Every field except `wall_ns` is
/// a pure function of the schedule (byte-identical run to run); `wall_ns`
/// is the host's contribution and is excluded from the deterministic
/// exports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakSlice {
    /// Virtual time at the slice end, microseconds.
    pub at_us: u64,
    /// Scheduler events popped inside the slice.
    pub events: u64,
    /// Endpoint packets (client tx + server tx) inside the slice.
    pub packets: u64,
    /// Flows launched inside the slice.
    pub flows_started: u64,
    /// Flows finished inside the slice.
    pub flows_completed: u64,
    /// RST verdicts observed inside the slice.
    pub resets: u64,
    /// Data-delivering completions inside the slice.
    pub got_data: u64,
    /// Flows tracked at the device at slice end.
    pub tracked_flows: usize,
    /// Events still scheduled (wheel + overflow) at slice end.
    pub wheel_depth: usize,
    /// Largest per-shard conntrack occupancy at slice end.
    pub max_shard_len: usize,
    /// Wall nanoseconds the slice took (host-dependent).
    pub wall_ns: u64,
}

/// Everything a soak run measured.
#[derive(Debug, Clone)]
pub struct SoakReport {
    pub stats: LoadStats,
    /// Scheduler events processed (virtual-time deterministic).
    pub events: u64,
    /// Peak simultaneously tracked flows at the device.
    pub peak_tracked_flows: usize,
    /// Final per-shard occupancy.
    pub shard_lens: Vec<usize>,
    /// Total GC ring probes across shards.
    pub gc_probes: u64,
    /// Largest per-shard GC probe count.
    pub max_shard_gc_probes: u64,
    /// Device-visible packets (each endpoint transmission crosses the
    /// device once) — the denominator for the GC budget check.
    pub device_packets: u64,
    /// Conntrack allocation estimate divided by peak tracked flows.
    pub bytes_per_flow: f64,
    /// Wall-clock duration of the whole run (drain included).
    pub wall_seconds: f64,
    /// Endpoint packets per wall second, the headline figure.
    pub sustained_pps: f64,
    /// Steady-state wall nanoseconds per scheduler event.
    pub p50_event_ns: u64,
    pub p99_event_ns: u64,
    pub p999_event_ns: u64,
    /// Per-slice ns/event histogram (steady state), for the obs snapshot.
    latency_hist: Histogram,
    /// The run resolved in time: one entry per driver slice, in order.
    pub timeline: Vec<SoakSlice>,
}

impl SoakReport {
    /// True when GC work stayed within the advertised per-packet bound on
    /// every shard.
    pub fn gc_within_budget(&self) -> bool {
        self.gc_probes <= GC_PROBE_BUDGET as u64 * self.device_packets.max(1)
    }

    /// The virtual-time-deterministic slice of the report: identical bytes
    /// for identical (seed, profile, topology), regardless of wall clock,
    /// thread count, or machine.
    pub fn deterministic_json(&self) -> String {
        let s = &self.stats;
        let shard_lens: Vec<String> = self.shard_lens.iter().map(usize::to_string).collect();
        format!(
            concat!(
                "{{\"flows_started\":{},\"flows_completed\":{},\"got_data\":{},",
                "\"resets\":{},\"oracle_mismatches\":{},\"open_loop_flows\":{},",
                "\"closed_loop_flows\":{},\"client_tx\":{},\"client_rx\":{},",
                "\"server_tx\":{},\"server_rx\":{},\"events\":{},",
                "\"peak_tracked_flows\":{},\"gc_probes\":{},\"device_packets\":{},",
                "\"shard_lens\":[{}]}}"
            ),
            s.flows_started,
            s.flows_completed,
            s.got_data,
            s.resets,
            s.oracle_mismatches,
            s.open_loop_flows,
            s.closed_loop_flows,
            s.client_tx_packets,
            s.client_rx_packets,
            s.server_tx_packets,
            s.server_rx_packets,
            self.events,
            self.peak_tracked_flows,
            self.gc_probes,
            self.device_packets,
            shard_lens.join(",")
        )
    }

    /// The deterministic slice of the timeline as JSON: every per-slice
    /// field except `wall_ns`, in slice order — byte-identical for
    /// identical (seed, profile, topology) like
    /// [`SoakReport::deterministic_json`].
    pub fn timeline_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.timeline.len() * 160);
        out.push_str("{\"slices\":[");
        for (i, s) in self.timeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "{{\"at_us\":{},\"events\":{},\"packets\":{},",
                    "\"flows_started\":{},\"flows_completed\":{},\"resets\":{},",
                    "\"got_data\":{},\"tracked_flows\":{},\"wheel_depth\":{},",
                    "\"max_shard_len\":{}}}"
                ),
                s.at_us,
                s.events,
                s.packets,
                s.flows_started,
                s.flows_completed,
                s.resets,
                s.got_data,
                s.tracked_flows,
                s.wheel_depth,
                s.max_shard_len,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The timeline as a [`TimeSeries`] windowed at the driver's slice
    /// width: per-slice deltas as counters (`load.slice.*`), end-of-slice
    /// occupancies as gauges — ready for OpenMetrics or Chrome-trace
    /// export. Deterministic only: `wall_ns` stays on [`SoakSlice`], so
    /// the series (like [`SoakReport::deterministic_json`]) is
    /// byte-identical run to run.
    pub fn timeline_series(&self, slice: Duration) -> TimeSeries {
        let window_us = (slice.as_micros() as u64).max(1);
        let mut series = TimeSeries::with_window_us(window_us);
        for s in &self.timeline {
            // Stamp inside the slice's own window: slices end on window
            // boundaries, so the end instant already belongs to the next.
            let at = s.at_us.saturating_sub(1);
            let mut snap = Snapshot::new();
            snap.insert("load.slice.events", MetricValue::Counter(s.events));
            snap.insert("load.slice.packets", MetricValue::Counter(s.packets));
            snap.insert("load.slice.flows_started", MetricValue::Counter(s.flows_started));
            snap.insert("load.slice.flows_completed", MetricValue::Counter(s.flows_completed));
            snap.insert("load.slice.resets", MetricValue::Counter(s.resets));
            snap.insert("load.slice.got_data", MetricValue::Counter(s.got_data));
            snap.insert("load.slice.tracked_flows", MetricValue::Gauge(s.tracked_flows as i64));
            snap.insert("load.slice.wheel_depth", MetricValue::Gauge(s.wheel_depth as i64));
            snap.insert("load.slice.max_shard_len", MetricValue::Gauge(s.max_shard_len as i64));
            series.observe(at, &snap);
        }
        series
    }

    /// Full report as an obs [`Snapshot`] (counters + the steady-state
    /// latency histogram), for merging with device/network snapshots and
    /// JSON export.
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        let s = &self.stats;
        for (name, v) in [
            ("load.flows_started", s.flows_started),
            ("load.flows_completed", s.flows_completed),
            ("load.got_data", s.got_data),
            ("load.resets", s.resets),
            ("load.oracle_mismatches", s.oracle_mismatches),
            ("load.open_loop_flows", s.open_loop_flows),
            ("load.closed_loop_flows", s.closed_loop_flows),
            ("load.client_tx_packets", s.client_tx_packets),
            ("load.client_rx_packets", s.client_rx_packets),
            ("load.server_tx_packets", s.server_tx_packets),
            ("load.server_rx_packets", s.server_rx_packets),
            ("load.events", self.events),
            ("load.peak_tracked_flows", self.peak_tracked_flows as u64),
            ("load.gc_probes", self.gc_probes),
            ("load.sustained_pps", self.sustained_pps as u64),
            ("load.bytes_per_flow", self.bytes_per_flow as u64),
        ] {
            snap.insert(name, MetricValue::Counter(v));
        }
        for (i, &len) in self.shard_lens.iter().enumerate() {
            snap.insert(format!("load.shard_occupancy.{i:02}"), MetricValue::Counter(len as u64));
        }
        snap.insert("load.event_wall_ns", MetricValue::Hist(self.latency_hist.clone()));
        snap
    }
}

/// Builds the soak topology and schedules for `config`.
///
/// The domain universe is the registry sample + Tranco head padded with
/// long-tail filler names to `profile.universe_domains`; the device policy
/// carries the universe's full SNI-RST set and nothing else, so the
/// per-flow outcome oracle is exact: a flow must be RST iff its SNI
/// matches the RST set.
pub fn build_lab(config: SoakConfig) -> SoakLab {
    let profile = &config.profile;
    let universe = Universe::generate(profile.seed);

    // Popularity rank order: the Tranco head first (popular sites, mostly
    // unblocked — the Zipf head hammers these), then the registry sample
    // (96% RST-blocked, so blocks live in the warm mid-tail), then filler
    // long tail up to the configured universe size.
    let domains: Vec<Arc<str>> = universe
        .tranco
        .iter()
        .chain(universe.registry_sample.iter())
        .map(|d| d.name.clone())
        .chain((0..profile.universe_domains).map(|i| format!("filler-{i}.example.ru")))
        .take(profile.universe_domains)
        .map(|name| Arc::from(name.as_str()))
        .collect();

    let mut policy = Policy::permissive();
    for d in &universe.blocks.sni_rst {
        policy.sni_rst.insert(d.clone());
    }
    let blocked: Vec<bool> = domains.iter().map(|d| policy.sni_rst.matches(d)).collect();
    let blocked_universe_fraction =
        blocked.iter().filter(|&&b| b).count() as f64 / blocked.len().max(1) as f64;
    let handle = PolicyHandle::new(policy);

    let mut device = TspuDevice::reliable("tspu-load", handle);
    device = match config.shards {
        Some(shards) => device.with_flow_shards(config.flow_capacity, shards),
        None => device.with_flow_capacity(config.flow_capacity),
    };

    let mut net = Network::with_default_latency();
    let device = net.install_middlebox(device);

    let server_addr = Ipv4Addr::new(93, 184, 216, 34);
    let server = net.add_host(server_addr);
    let mut clients = Vec::with_capacity(profile.clients);
    // One provider path shared by the whole population: access router,
    // the TSPU at the provider edge, one transit hop. Route interning
    // collapses all (client, server) pairs onto a single arena entry.
    let route = Route {
        steps: vec![
            RouteStep::router(Ipv4Addr::new(10, 255, 0, 1)),
            RouteStep::with_device(
                Ipv4Addr::new(185, 140, 30, 77),
                device.id(),
                Direction::LocalToRemote,
            ),
            RouteStep::router(Ipv4Addr::new(192, 0, 2, 1)),
        ],
    };
    for i in 0..profile.clients {
        let addr = Ipv4Addr::new(10, 77, (i / 250) as u8, (i % 250 + 1) as u8);
        let host = net.add_host(addr);
        net.set_route_symmetric(host, server, route.clone());
        clients.push((host, addr));
    }

    let schedules = build_schedule(profile, &domains, &blocked);
    let image = net.image();

    SoakLab {
        config,
        image,
        device,
        clients,
        server,
        server_addr,
        schedules,
        blocked_universe_fraction,
    }
}

impl SoakLab {
    /// Total flows the schedules will launch.
    pub fn total_flows(&self) -> usize {
        self.schedules.iter().map(|c| c.open.len() + c.closed.len()).sum()
    }

    /// Forks a pristine network from the lab image with fresh apps
    /// attached and initial timers armed. Exposed for benches that want
    /// to time the drive loop alone.
    pub fn fork(&self) -> (Network, Arc<Mutex<LoadStats>>) {
        let mut net = self.image.fork();
        let stats: Arc<Mutex<LoadStats>> = Arc::default();
        net.set_app(
            self.server,
            Box::new(LoadServerApp::new(
                self.server_addr,
                self.config.profile.response_bytes,
                Arc::clone(&stats),
            )),
        );
        for (i, &(host, addr)) in self.clients.iter().enumerate() {
            let app = LoadClientApp::new(
                addr,
                self.server_addr,
                443,
                self.schedules[i].clone(),
                self.config.profile.closed_loop_window,
                Arc::clone(&stats),
            );
            net.set_app(host, Box::new(app));
            net.arm_timer(host, Duration::ZERO);
        }
        (net, stats)
    }

    fn drain_inboxes(&self, net: &mut Network) {
        for &(host, _) in &self.clients {
            drop(net.take_inbox(host));
        }
        drop(net.take_inbox(self.server));
    }

    /// Runs one soak to completion and reports.
    pub fn run(&self) -> SoakReport {
        let (mut net, stats) = self.fork();
        let total_flows = self.total_flows() as u64;
        let deadline = Time::ZERO + self.config.profile.span + Duration::from_secs(120);

        let started = Instant::now();
        let mut samples: Vec<(u64, u64)> = Vec::new(); // (ns per event, events)
        let mut peak_tracked = 0usize;
        // Latency samples accumulate over fixed event-count windows rather
        // than per virtual-time slice: a thin slice (a few hundred events,
        // ~1 ms of wall time) turns one OS scheduler tick into a 10×
        // outlier, so p999 over raw slices measures the host, not the
        // engine. A ≥16k-event window is tens of milliseconds of wall
        // time — preemption amortizes inside it, and a real engine cliff
        // (rehash, GC sweep) still dominates its window.
        const WINDOW_EVENTS: u64 = 16_384;
        let (mut acc_wall_ns, mut acc_events) = (0u64, 0u64);
        let mut timeline: Vec<SoakSlice> = Vec::new();
        // Cumulative values at the previous slice boundary, for deltas.
        let (mut prev_started, mut prev_completed) = (0u64, 0u64);
        let (mut prev_resets, mut prev_got_data, mut prev_packets) = (0u64, 0u64, 0u64);
        loop {
            let events_before = net.events_popped();
            let slice_started = Instant::now();
            net.run_for(self.config.slice);
            let slice_wall_ns = slice_started.elapsed().as_nanos() as u64;
            let slice_events = net.events_popped() - events_before;
            acc_wall_ns += slice_wall_ns;
            acc_events += slice_events;
            if acc_events >= WINDOW_EVENTS {
                samples.push((acc_wall_ns / acc_events, acc_events));
                (acc_wall_ns, acc_events) = (0, 0);
            }
            // Endpoints consume packets through their apps; the inbox
            // copies the simulator also keeps would pin every payload of
            // the soak in memory. Drop them each slice.
            self.drain_inboxes(&mut net);
            let conntrack = net.middlebox(self.device).conntrack();
            let tracked = conntrack.len();
            let max_shard_len = conntrack.shard_lens().into_iter().max().unwrap_or(0);
            peak_tracked = peak_tracked.max(tracked);
            let (started_c, completed, resets, got_data, packets) = {
                let s = stats.lock().expect("stats lock");
                (
                    s.flows_started,
                    s.flows_completed,
                    s.resets,
                    s.got_data,
                    s.client_tx_packets + s.server_tx_packets,
                )
            };
            timeline.push(SoakSlice {
                at_us: net.now().as_micros(),
                events: slice_events,
                packets: packets - prev_packets,
                flows_started: started_c - prev_started,
                flows_completed: completed - prev_completed,
                resets: resets - prev_resets,
                got_data: got_data - prev_got_data,
                tracked_flows: tracked,
                wheel_depth: net.pending_events(),
                max_shard_len,
                wall_ns: slice_wall_ns,
            });
            (prev_started, prev_completed) = (started_c, completed);
            (prev_resets, prev_got_data, prev_packets) = (resets, got_data, packets);
            if completed >= total_flows || net.now() >= deadline {
                break;
            }
        }
        // Drain stragglers (FINs in flight past the last slice).
        net.run_until_idle();
        self.drain_inboxes(&mut net);
        let wall_seconds = started.elapsed().as_secs_f64();

        // Steady state: skip the ramp-up (first 10% of windows). Every
        // emitted window holds ≥ WINDOW_EVENTS events by construction, so
        // no thin-sample filtering is needed.
        let skip = samples.len() / 10;
        let mut steady: Vec<u64> = samples.iter().skip(skip).map(|&(ns, _)| ns).collect();
        steady.sort_unstable();
        let pct = |q: f64| -> u64 {
            if steady.is_empty() {
                return 0;
            }
            let idx = ((steady.len() as f64 - 1.0) * q).round() as usize;
            steady[idx]
        };
        let mut latency_hist = Histogram::new();
        for &ns in &steady {
            latency_hist.record(ns);
        }

        let conntrack = net.middlebox(self.device).conntrack();
        let stats = stats.lock().expect("stats lock").clone();
        let device_packets = stats.client_tx_packets + stats.server_tx_packets;
        SoakReport {
            events: net.events_popped(),
            peak_tracked_flows: peak_tracked,
            shard_lens: conntrack.shard_lens(),
            gc_probes: conntrack.gc_probes(),
            max_shard_gc_probes: conntrack.max_shard_gc_probes(),
            device_packets,
            bytes_per_flow: conntrack.memory_bytes_estimate() as f64
                / peak_tracked.max(1) as f64,
            wall_seconds,
            sustained_pps: device_packets as f64 / wall_seconds.max(1e-9),
            p50_event_ns: pct(0.50),
            p99_event_ns: pct(0.99),
            p999_event_ns: pct(0.999),
            latency_hist,
            timeline,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SoakConfig {
        SoakConfig {
            profile: LoadProfile {
                flows: 2_000,
                clients: 8,
                universe_domains: 5_000,
                span: Duration::from_secs(60),
                ..LoadProfile::default()
            },
            flow_capacity: 4_096,
            shards: Some(4),
            slice: Duration::from_millis(100),
        }
    }

    #[test]
    fn soak_completes_all_flows_with_clean_oracle() {
        let lab = build_lab(small_config());
        let report = lab.run();
        assert_eq!(report.stats.flows_started, 2_000);
        assert_eq!(report.stats.flows_completed, 2_000);
        assert_eq!(report.stats.oracle_mismatches, 0, "policy oracle violated");
        // The universe's RST set must actually bite: some flows reset,
        // most fetch data.
        assert!(report.stats.resets > 0, "no blocked domains sampled");
        assert!(report.stats.got_data > report.stats.resets);
        assert!(report.gc_within_budget());
        assert_eq!(report.shard_lens.len(), 4);
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let lab = build_lab(small_config());
        let a = lab.run().deterministic_json();
        let b = lab.run().deterministic_json();
        assert_eq!(a, b);
    }

    #[test]
    fn timeline_slices_sum_to_the_totals_and_replay_identically() {
        let lab = build_lab(small_config());
        let report = lab.run();
        assert!(!report.timeline.is_empty());
        // Slice deltas reassemble the cumulative totals exactly.
        let started: u64 = report.timeline.iter().map(|s| s.flows_started).sum();
        let completed: u64 = report.timeline.iter().map(|s| s.flows_completed).sum();
        let packets: u64 = report.timeline.iter().map(|s| s.packets).sum();
        assert_eq!(started, report.stats.flows_started);
        assert_eq!(completed, report.stats.flows_completed);
        assert_eq!(packets, report.device_packets);
        // Slice ends advance strictly, on the driver's slice boundaries.
        let width = small_config().slice.as_micros() as u64;
        for (i, s) in report.timeline.iter().enumerate() {
            assert_eq!(s.at_us, (i as u64 + 1) * width, "slice {i} off-grid");
        }
        // The flow population ramps: some slice must hold >1000 flows.
        assert!(report.timeline.iter().any(|s| s.tracked_flows > 1_000));
        // Deterministic exports are identical across replays.
        let replay = lab.run();
        assert_eq!(report.timeline_json(), replay.timeline_json());
        let slice = small_config().slice;
        assert_eq!(
            report.timeline_series(slice).to_json(),
            replay.timeline_series(slice).to_json()
        );
        // The wall-clock track differs (or at least is allowed to): the
        // deterministic JSON must not contain it.
        assert!(!report.timeline_json().contains("wall_ns"));
    }

    #[test]
    fn timeline_series_windows_match_the_slices() {
        let lab = build_lab(small_config());
        let report = lab.run();
        let series = report.timeline_series(small_config().slice);
        assert_eq!(series.len(), report.timeline.len());
        let events = series.counter_series("load.slice.events");
        // Window i holds slice i's delta (slices without events are
        // filtered by counter_series, so compare per present window).
        for (index, v) in events {
            assert_eq!(v, report.timeline[index as usize].events);
        }
    }

    #[test]
    fn peak_population_is_tracked_concurrently() {
        let lab = build_lab(small_config());
        let report = lab.run();
        // Arrivals span 60 s < the 480 s Established timeout, so the
        // device must be holding a large share of the population at once.
        assert!(
            report.peak_tracked_flows > 1_000,
            "peak tracked {} too low",
            report.peak_tracked_flows
        );
        assert!(report.bytes_per_flow > 0.0);
    }
}
