//! Zipf-distributed index sampling over a fixed universe.
//!
//! Web request popularity is famously heavy-tailed: a handful of domains
//! absorb most connections while a long tail sees a trickle. The load
//! generator reproduces that shape so the device's flow table and SNI
//! matcher are exercised the way a real TSPU's would be — hot entries hit
//! constantly while the tail churns through creation and expiry.
//!
//! Sampling is inverse-CDF over a precomputed cumulative table: `O(n)`
//! memory once, `O(log n)` per sample, and — unlike rejection samplers —
//! exactly one RNG draw per sample, which keeps the generator's output a
//! pure function of the seed regardless of the exponent.

use rand::rngs::SmallRng;
use rand::Rng;

/// Inverse-CDF sampler for `P(i) ∝ 1 / (i+1)^s` over `0..n`.
pub struct ZipfSampler {
    /// `cdf[i]` = P(index ≤ i), normalized so `cdf[n-1] == 1.0`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the table for a universe of `n` items with exponent `s`.
    /// `s = 0` degenerates to uniform; `s ≈ 1` is the classic web-traffic
    /// shape.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "zipf universe must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of items in the universe.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the universe has exactly one item (never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one index. Exactly one `rng` call, so sample streams are
    /// reproducible from the seed alone.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first index whose cdf is >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn head_is_hot_and_tail_is_covered() {
        let sampler = ZipfSampler::new(10_000, 1.02);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u32; 10_000];
        let draws = 200_000;
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate any mid-tail rank by a wide margin.
        assert!(counts[0] > 100 * counts[5_000].max(1));
        // The head carries a disproportionate share…
        let head: u32 = counts[..100].iter().sum();
        assert!(head as f64 > 0.4 * draws as f64, "head share too small: {head}");
        // …but the tail is still being visited.
        let tail_hit = counts[5_000..].iter().filter(|&&c| c > 0).count();
        assert!(tail_hit > 500, "tail barely sampled: {tail_hit}");
    }

    #[test]
    fn deterministic_across_runs() {
        let sampler = ZipfSampler::new(1_000, 0.9);
        let a: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..256).map(|_| sampler.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..256).map(|_| sampler.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_exponent_spreads() {
        let sampler = ZipfSampler::new(100, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < 2 * *min, "uniform draw skewed: min {min} max {max}");
    }
}
