//! Deterministic population workload: who connects where, and when.
//!
//! A [`LoadProfile`] describes a population statistically — flow count,
//! Zipf exponent over the domain universe, diurnal rate curve, open/closed
//! loop mix — and [`build_schedule`] expands it into per-client flow
//! schedules that are a pure function of the seed. The simulator then
//! replays the schedule through [`LoadClientApp`]/[`LoadServerApp`], which
//! drive full SYN → ClientHello → response → FIN lifecycles against the
//! device under test.
//!
//! ## Arrival model
//!
//! Open-loop arrivals follow a deterministic quantile schedule of the
//! inhomogeneous rate λ(t) = r₀·(1 + A·sin(2πt/P)): flow k starts at
//! Λ⁻¹(k + ½) where Λ is the integrated rate. That reproduces the diurnal
//! swell-and-ebb the paper's vantage ISPs see (peak-hour load is what
//! sizes a TSPU's flow table) without injecting Poisson jitter that would
//! make two runs of the same seed diverge.
//!
//! Closed-loop clients instead keep a bounded window of in-flight flows
//! and launch a replacement the moment one completes — the feedback
//! regime where a slow or blocking middlebox self-throttles its own
//! offered load.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tspu_netsim::{Application, Output, Time};
use tspu_stack::craft::TcpPacketSpec;
use tspu_wire::ipv4::{Ipv4Packet, Protocol};
use tspu_wire::tcp::{TcpFlags, TcpSegment};
use tspu_wire::tls::ClientHelloBuilder;

use crate::zipf::ZipfSampler;

/// Statistical description of a traffic population.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Everything below is a pure function of this seed.
    pub seed: u64,
    /// Total flows to generate (open + closed loop).
    pub flows: usize,
    /// Client hosts the flows are spread across.
    pub clients: usize,
    /// Domain universe size the Zipf sampler draws from.
    pub universe_domains: usize,
    /// Zipf exponent; ≈1 is the classic web-popularity shape.
    pub zipf_exponent: f64,
    /// Virtual time window the open-loop arrivals span.
    pub span: Duration,
    /// Relative swing of the diurnal rate curve, 0 (flat) to 1.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal curve (a compressed "day").
    pub diurnal_period: Duration,
    /// Fraction of flows run closed-loop instead of scheduled.
    pub closed_loop_fraction: f64,
    /// In-flight window per closed-loop client.
    pub closed_loop_window: usize,
    /// Server response payload size (the "page").
    pub response_bytes: usize,
}

impl Default for LoadProfile {
    fn default() -> LoadProfile {
        LoadProfile {
            seed: 2022,
            flows: 50_000,
            clients: 64,
            universe_domains: 100_000,
            zipf_exponent: 1.02,
            // Under the Established idle timeout (480 s), so the device
            // tracks the whole population at once.
            span: Duration::from_secs(240),
            diurnal_amplitude: 0.6,
            diurnal_period: Duration::from_secs(120),
            closed_loop_fraction: 0.25,
            closed_loop_window: 8,
            response_bytes: 400,
        }
    }
}

/// How one flow ended, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowOutcome {
    /// Server data arrived intact.
    GotData,
    /// The flow was torn down by a RST (the device's SNI-RST arm).
    Reset,
}

/// Aggregate counters shared by every app in one soak run.
#[derive(Debug, Default, Clone)]
pub struct LoadStats {
    pub flows_started: u64,
    pub flows_completed: u64,
    pub got_data: u64,
    pub resets: u64,
    /// Completions whose outcome contradicted the policy oracle
    /// (blocked domain that fetched data, or clean domain that got RST).
    pub oracle_mismatches: u64,
    pub open_loop_flows: u64,
    pub closed_loop_flows: u64,
    pub client_tx_packets: u64,
    pub client_rx_packets: u64,
    pub server_tx_packets: u64,
    pub server_rx_packets: u64,
}

/// Shared handle to the run's counters.
pub type SharedStats = Arc<Mutex<LoadStats>>;

/// One pre-scheduled (open-loop) or queued (closed-loop) flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Arrival time; `Time::ZERO` placeholder for closed-loop flows.
    pub at: Time,
    /// SNI the ClientHello will carry.
    pub domain: Arc<str>,
    /// Policy oracle: does the device's SNI-RST set match this domain?
    pub blocked: bool,
}

/// Everything one client host replays.
#[derive(Debug, Clone, Default)]
pub struct ClientSchedule {
    /// Open-loop arrivals, ascending in time.
    pub open: Vec<FlowSpec>,
    /// Closed-loop work queue, launched window-at-a-time.
    pub closed: Vec<FlowSpec>,
}

/// Integrated diurnal rate Λ(t) for λ(t) = 1 + A·sin(2πt/P), in seconds
/// of "flat-rate equivalent" time. Monotone for A ≤ 1.
fn integrated_rate(t: f64, amplitude: f64, period: f64) -> f64 {
    let w = std::f64::consts::TAU / period;
    t + amplitude / w * (1.0 - (w * t).cos())
}

/// Inverse of [`integrated_rate`] by bisection over `[0, span]`.
fn arrival_time(target: f64, amplitude: f64, period: f64, span: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, span);
    for _ in 0..52 {
        let mid = 0.5 * (lo + hi);
        if integrated_rate(mid, amplitude, period) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Expands a profile into per-client schedules.
///
/// `domains` is the universe (index = popularity rank), `blocked(i)` the
/// policy oracle for rank `i`. Flows are dealt round-robin across clients,
/// so every client sees the same statistical mix.
pub fn build_schedule(
    profile: &LoadProfile,
    domains: &[Arc<str>],
    blocked: &[bool],
) -> Vec<ClientSchedule> {
    assert!(profile.clients > 0, "need at least one client");
    assert_eq!(domains.len(), blocked.len());
    let sampler = ZipfSampler::new(domains.len(), profile.zipf_exponent);
    let mut rng = SmallRng::seed_from_u64(profile.seed);

    let span = profile.span.as_secs_f64().max(1e-6);
    let period = profile.diurnal_period.as_secs_f64().max(1e-6);
    let amplitude = profile.diurnal_amplitude.clamp(0.0, 1.0);
    // Scale quantile targets so the last open-loop arrival lands at span.
    let total_mass = integrated_rate(span, amplitude, period);

    let mut schedules = vec![ClientSchedule::default(); profile.clients];
    let mut open_emitted = 0usize;
    // Count open-loop flows first so the quantile spacing is exact.
    let closed_flags: Vec<bool> =
        (0..profile.flows).map(|_| rng.gen_bool(profile.closed_loop_fraction.clamp(0.0, 1.0))).collect();
    let open_total = closed_flags.iter().filter(|&&c| !c).count().max(1);

    for (k, &is_closed) in closed_flags.iter().enumerate() {
        let rank = sampler.sample(&mut rng);
        let spec_at = if is_closed {
            Time::ZERO
        } else {
            let target = (open_emitted as f64 + 0.5) / open_total as f64 * total_mass;
            open_emitted += 1;
            Time::from_micros((arrival_time(target, amplitude, period, span) * 1e6) as u64)
        };
        let spec = FlowSpec { at: spec_at, domain: Arc::clone(&domains[rank]), blocked: blocked[rank] };
        let client = &mut schedules[k % profile.clients];
        if is_closed {
            client.closed.push(spec);
        } else {
            client.open.push(spec);
        }
    }
    // Round-robin dealing preserves global time order within each client,
    // but assert it — the apps rely on it for O(1) next-arrival peeks.
    for s in &schedules {
        debug_assert!(s.open.windows(2).all(|w| w[0].at <= w[1].at));
    }
    schedules
}

/// Client-side lifecycle phase of one in-flight flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// SYN sent, waiting for SYN/ACK.
    Connecting,
    /// ClientHello sent, waiting for data or RST.
    AwaitingResponse,
}

#[derive(Debug)]
struct InFlight {
    spec: FlowSpec,
    phase: Phase,
    closed_loop: bool,
}

/// A population slice: one host multiplexing many concurrent flows,
/// distinguished by source port. Packets are matched back to flows by the
/// destination port of the incoming segment, so per-packet dispatch is one
/// hash lookup regardless of how many flows are live.
pub struct LoadClientApp {
    addr: Ipv4Addr,
    server: Ipv4Addr,
    server_port: u16,
    schedule: ClientSchedule,
    /// Next unlaunched index into `schedule.open`.
    next_open: usize,
    /// Next unlaunched index into `schedule.closed`.
    next_closed: usize,
    window: usize,
    /// Ports are dealt sequentially from 1024; uniqueness across the whole
    /// run keeps every flow a distinct conntrack key.
    next_port: u16,
    flows: HashMap<u16, InFlight>,
    stats: SharedStats,
    started: bool,
}

impl LoadClientApp {
    pub fn new(
        addr: Ipv4Addr,
        server: Ipv4Addr,
        server_port: u16,
        schedule: ClientSchedule,
        window: usize,
        stats: SharedStats,
    ) -> LoadClientApp {
        LoadClientApp {
            addr,
            server,
            server_port,
            schedule,
            next_open: 0,
            next_closed: 0,
            window,
            next_port: 1024,
            flows: HashMap::new(),
            stats,
            started: false,
        }
    }

    fn launch(&mut self, spec: FlowSpec, closed_loop: bool, out: &mut Vec<Output>) {
        let port = self.next_port;
        self.next_port = self.next_port.checked_add(1).expect("client port space exhausted");
        let syn =
            TcpPacketSpec::new(self.addr, port, self.server, self.server_port, TcpFlags::SYN)
                .build();
        out.push(Output::send(syn));
        {
            let mut s = self.stats.lock().expect("stats lock");
            s.flows_started += 1;
            s.client_tx_packets += 1;
            if closed_loop {
                s.closed_loop_flows += 1;
            } else {
                s.open_loop_flows += 1;
            }
        }
        self.flows.insert(port, InFlight { spec, phase: Phase::Connecting, closed_loop });
    }

    /// Launches every due open-loop arrival and re-arms the wake-up timer
    /// for the next one.
    fn pump_open(&mut self, now: Time, out: &mut Vec<Output>) {
        while self.next_open < self.schedule.open.len() && self.schedule.open[self.next_open].at <= now
        {
            let spec = self.schedule.open[self.next_open].clone();
            self.next_open += 1;
            self.launch(spec, false, out);
        }
        if self.next_open < self.schedule.open.len() {
            let at = self.schedule.open[self.next_open].at;
            out.push(Output::Timer { delay: at - now });
        }
    }

    fn pump_closed(&mut self, out: &mut Vec<Output>) {
        let in_flight = self.flows.values().filter(|f| f.closed_loop).count();
        let mut room = self.window.saturating_sub(in_flight);
        while room > 0 && self.next_closed < self.schedule.closed.len() {
            let spec = self.schedule.closed[self.next_closed].clone();
            self.next_closed += 1;
            self.launch(spec, true, out);
            room -= 1;
        }
    }

    fn finish(&mut self, port: u16, outcome: FlowOutcome, out: &mut Vec<Output>) {
        let Some(flow) = self.flows.remove(&port) else { return };
        {
            let mut s = self.stats.lock().expect("stats lock");
            s.flows_completed += 1;
            match outcome {
                FlowOutcome::GotData => s.got_data += 1,
                FlowOutcome::Reset => s.resets += 1,
            }
            let expected = if flow.spec.blocked { FlowOutcome::Reset } else { FlowOutcome::GotData };
            if outcome != expected {
                s.oracle_mismatches += 1;
            }
        }
        if outcome == FlowOutcome::GotData {
            // Polite teardown; the RST case is already torn down for us.
            let fin = TcpPacketSpec::new(
                self.addr,
                port,
                self.server,
                self.server_port,
                TcpFlags::FIN | TcpFlags::ACK,
            )
            .seq_ack(2, 2)
            .build();
            self.stats.lock().expect("stats lock").client_tx_packets += 1;
            out.push(Output::send(fin));
        }
        if flow.closed_loop {
            self.pump_closed(out);
        }
    }
}

impl Application for LoadClientApp {
    fn on_packet(&mut self, _now: Time, packet: &[u8]) -> Vec<Output> {
        let mut out = Vec::new();
        let Ok(ip) = Ipv4Packet::new_checked(packet) else { return out };
        if ip.protocol() != Protocol::Tcp || ip.is_fragment() {
            return out;
        }
        let Ok(seg) = TcpSegment::new_checked(ip.payload()) else { return out };
        self.stats.lock().expect("stats lock").client_rx_packets += 1;
        let port = seg.dst_port();
        let flags = seg.flags();
        if flags.rst() {
            self.finish(port, FlowOutcome::Reset, &mut out);
            return out;
        }
        let Some(flow) = self.flows.get_mut(&port) else { return out };
        match flow.phase {
            Phase::Connecting if flags.syn() && flags.ack() => {
                flow.phase = Phase::AwaitingResponse;
                let domain = Arc::clone(&flow.spec.domain);
                let hello = ClientHelloBuilder::new(&domain).build();
                let ack = TcpPacketSpec::new(
                    self.addr,
                    port,
                    self.server,
                    self.server_port,
                    TcpFlags::ACK,
                )
                .seq_ack(1, 1)
                .build();
                let ch = TcpPacketSpec::new(
                    self.addr,
                    port,
                    self.server,
                    self.server_port,
                    TcpFlags::PSH_ACK,
                )
                .seq_ack(1, 1)
                .payload(hello)
                .build();
                self.stats.lock().expect("stats lock").client_tx_packets += 2;
                out.push(Output::send(ack));
                out.push(Output::send(ch));
            }
            Phase::AwaitingResponse if !seg.payload().is_empty() => {
                self.finish(port, FlowOutcome::GotData, &mut out);
            }
            _ => {}
        }
        out
    }

    fn on_timer(&mut self, now: Time) -> Vec<Output> {
        let mut out = Vec::new();
        if !self.started {
            self.started = true;
            self.pump_closed(&mut out);
        }
        self.pump_open(now, &mut out);
        out
    }
}

/// The far end: a stateless responder standing in for the entire remote
/// web. SYN begets SYN/ACK; any data segment begets one response "page";
/// teardown segments are absorbed. Statelessness is what lets one host
/// terminate a million flows without bookkeeping — the device under test
/// is the only thing in the topology tracking per-flow state.
pub struct LoadServerApp {
    addr: Ipv4Addr,
    response: Arc<[u8]>,
    stats: SharedStats,
}

impl LoadServerApp {
    pub fn new(addr: Ipv4Addr, response_bytes: usize, stats: SharedStats) -> LoadServerApp {
        LoadServerApp { addr, response: vec![0x44; response_bytes].into(), stats }
    }
}

impl Application for LoadServerApp {
    fn on_packet(&mut self, _now: Time, packet: &[u8]) -> Vec<Output> {
        let mut out = Vec::new();
        let Ok(ip) = Ipv4Packet::new_checked(packet) else { return out };
        if ip.protocol() != Protocol::Tcp || ip.is_fragment() {
            return out;
        }
        let Ok(seg) = TcpSegment::new_checked(ip.payload()) else { return out };
        let mut s = self.stats.lock().expect("stats lock");
        s.server_rx_packets += 1;
        let flags = seg.flags();
        let reply = if flags.is_pure_syn() {
            Some(
                TcpPacketSpec::new(
                    self.addr,
                    seg.dst_port(),
                    ip.src_addr(),
                    seg.src_port(),
                    TcpFlags::SYN_ACK,
                )
                .seq_ack(0, 1)
                .build(),
            )
        } else if !flags.rst() && !flags.fin() && !seg.payload().is_empty() {
            Some(
                TcpPacketSpec::new(
                    self.addr,
                    seg.dst_port(),
                    ip.src_addr(),
                    seg.src_port(),
                    TcpFlags::PSH_ACK,
                )
                .seq_ack(1, seg.payload().len() as u32 + 1)
                .payload(self.response.to_vec())
                .build(),
            )
        } else {
            None
        };
        if let Some(packet) = reply {
            s.server_tx_packets += 1;
            out.push(Output::send(packet));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_universe() -> (Vec<Arc<str>>, Vec<bool>) {
        let domains: Vec<Arc<str>> =
            (0..50).map(|i| Arc::from(format!("d{i}.example.ru").as_str())).collect();
        let blocked: Vec<bool> = (0..50).map(|i| i % 7 == 0).collect();
        (domains, blocked)
    }

    #[test]
    fn schedule_is_deterministic_and_complete() {
        let (domains, blocked) = tiny_universe();
        let profile = LoadProfile { flows: 1_000, clients: 8, ..LoadProfile::default() };
        let a = build_schedule(&profile, &domains, &blocked);
        let b = build_schedule(&profile, &domains, &blocked);
        let total = |s: &[ClientSchedule]| {
            s.iter().map(|c| c.open.len() + c.closed.len()).sum::<usize>()
        };
        assert_eq!(total(&a), 1_000);
        assert_eq!(a.len(), 8);
        for (ca, cb) in a.iter().zip(&b) {
            assert_eq!(ca.open.len(), cb.open.len());
            for (fa, fb) in ca.open.iter().zip(&cb.open) {
                assert_eq!(fa.at, fb.at);
                assert_eq!(fa.domain, fb.domain);
            }
        }
    }

    #[test]
    fn open_arrivals_are_sorted_and_span_bounded() {
        let (domains, blocked) = tiny_universe();
        let profile = LoadProfile { flows: 2_000, clients: 4, ..LoadProfile::default() };
        let schedules = build_schedule(&profile, &domains, &blocked);
        for c in &schedules {
            assert!(c.open.windows(2).all(|w| w[0].at <= w[1].at));
            if let Some(last) = c.open.last() {
                assert!(last.at <= Time::ZERO + profile.span + Duration::from_secs(1));
            }
        }
    }

    #[test]
    fn diurnal_curve_concentrates_arrivals_at_peak() {
        let (domains, blocked) = tiny_universe();
        let profile = LoadProfile {
            flows: 20_000,
            clients: 1,
            closed_loop_fraction: 0.0,
            diurnal_amplitude: 0.9,
            span: Duration::from_secs(120),
            diurnal_period: Duration::from_secs(120),
            ..LoadProfile::default()
        };
        let schedules = build_schedule(&profile, &domains, &blocked);
        let open = &schedules[0].open;
        // λ peaks in the first half-period (sin > 0) and troughs in the
        // second; the first half must carry substantially more arrivals.
        let half = Time::from_micros(60_000_000);
        let first_half = open.iter().filter(|f| f.at < half).count();
        let second_half = open.len() - first_half;
        assert!(
            first_half as f64 > 1.5 * second_half as f64,
            "diurnal shape missing: {first_half} vs {second_half}"
        );
    }

    #[test]
    fn closed_loop_fraction_respected_roughly() {
        let (domains, blocked) = tiny_universe();
        let profile = LoadProfile {
            flows: 10_000,
            clients: 16,
            closed_loop_fraction: 0.25,
            ..LoadProfile::default()
        };
        let schedules = build_schedule(&profile, &domains, &blocked);
        let closed: usize = schedules.iter().map(|c| c.closed.len()).sum();
        let frac = closed as f64 / 10_000.0;
        assert!((0.2..0.3).contains(&frac), "closed fraction {frac}");
    }
}
