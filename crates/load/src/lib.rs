//! Population-scale workload engine for the TSPU simulator.
//!
//! The paper's subject is a device that sits on *every* subscriber's path:
//! what makes TSPU viable at national scale is that one box can track the
//! flow population of an entire ISP. This crate supplies the traffic to
//! test that claim inside the simulator:
//!
//! - [`zipf`] — heavy-tailed domain popularity sampling;
//! - [`gen`] — seeded expansion of a [`LoadProfile`] (Zipf domains,
//!   diurnal arrival curve, open/closed-loop mix) into per-client flow
//!   schedules, and the client/server [`Application`]s that replay them as
//!   full SYN → ClientHello → response → FIN lifecycles;
//! - [`soak`] — the driver that builds the topology once, forks it per
//!   run, drives the population through a [`TspuDevice`], and reports
//!   sustained packets/sec, wall latency percentiles per scheduler event,
//!   bytes per tracked flow, and per-shard conntrack occupancy.
//!
//! Everything virtual-time derived is a pure function of the profile seed:
//! two runs of the same lab produce byte-identical
//! [`SoakReport::deterministic_json`] regardless of wall clock or thread
//! count, which is what lets CI hold the million-flow path to the same
//! determinism bar as the single-probe experiments.
//!
//! [`Application`]: tspu_netsim::Application
//! [`TspuDevice`]: tspu_core::TspuDevice
//! [`LoadProfile`]: gen::LoadProfile
//! [`SoakReport::deterministic_json`]: soak::SoakReport::deterministic_json

pub mod gen;
pub mod soak;
pub mod zipf;

pub use gen::{FlowOutcome, LoadClientApp, LoadProfile, LoadServerApp, LoadStats};
pub use soak::{build_lab, SoakConfig, SoakLab, SoakReport, SoakSlice};
pub use zipf::ZipfSampler;
