//! "What does the TSPU block?" — §6's artifacts: Fig. 6 (TSPU vs ISP
//! blocklist sets), Fig. 7 (categories), Table 3 (blocking types), plus
//! Table 7 (the OS timeout reference).

use std::collections::HashSet;
use std::fmt::Write as _;

use tspu_measure::domains::{self, DomainVerdict};
use tspu_measure::os_reference;
use tspu_measure::sweep::{self, ScanPool};
use tspu_topology::VantageLab;

use super::{universe, ExperimentReport};
use crate::env_usize;

/// Fig. 6: domains blocked by the TSPU versus by each ISP resolver, for
/// both test lists. The campaign shards domain-per-scenario across the
/// scan pool (`TSPU_THREADS`); aggregation is deterministic, so the
/// report is identical at any thread count.
pub fn fig6() -> ExperimentReport {
    let universe = universe();
    let limit = env_usize("TSPU_DOMAIN_LIMIT", 25_000);
    let pool = ScanPool::from_env();

    let mut body = String::new();
    for (list_name, domains, total) in [
        ("Tranco+CLBL", &universe.tranco, universe.tranco.len()),
        ("Registry sample", &universe.registry_sample, universe.registry_sample.len()),
    ] {
        let names: Vec<&str> = domains.iter().take(limit).map(|d| d.name.as_str()).collect();
        let tested = names.len();
        let campaign = sweep::registry_campaign(&universe, names, &pool);
        let tspu = campaign.tspu_blocked();
        let tspu_only = campaign.tspu_only();
        let _ = writeln!(body, "--- {list_name}: tested {tested} of {total} domains ---");
        let _ = writeln!(body, "  TSPU blocks: {}", tspu.len());
        for (isp, blocked) in &campaign.isp_blocked {
            let overlap = blocked.iter().filter(|d| tspu.contains(*d)).count();
            let _ = writeln!(
                body,
                "  {isp} resolver blocks: {} (∩ TSPU: {overlap}, ISP-only: {})",
                blocked.len(),
                blocked.len() - overlap
            );
        }
        let _ = writeln!(body, "  blocked ONLY by the TSPU (out-registry + resolver lag): {}\n", tspu_only.len());
    }
    body.push_str(
        "paper (Fig. 6/§6.3): the TSPU blocks 9,655 of the 10,000 recent registry\ndomains in all three ISPs, while the Rostelecom and OBIT resolvers manage\nonly 1,302 and 3,943; Tranco domains blocked only by the TSPU are mostly\nout-registry (Google services, circumvention, news, porn).\n",
    );
    ExperimentReport { id: "fig6", title: "Fig. 6 TSPU vs ISP blocking sets", body }
}

/// Fig. 7: blocked-domain categories.
pub fn fig7() -> ExperimentReport {
    let universe = universe();
    // Ground-truth blocked set (the campaign recovers the same list; the
    // histogram uses the full sample so counts match the paper's scale).
    let blocked: HashSet<String> = universe.blocks.sni_rst.iter().cloned().collect();
    let hist = domains::category_histogram(&universe, &blocked, universe.registry_sample.len(), 2022);
    let mut body = String::from("category            classified   blocked-by-TSPU\n");
    let mut rows: Vec<_> = hist.rows.iter().collect();
    rows.sort_by_key(|(_, (all, _))| std::cmp::Reverse(*all));
    for (category, (all, blocked)) in rows {
        let bar = "#".repeat(all / 60);
        let _ = writeln!(body, "{category:<20}{all:<13}{blocked:<10}{bar}");
    }
    let _ = writeln!(
        body,
        "\nexcluded: {} failed TCP + {} empty/unparseable (paper: 1398 + 2680)",
        hist.failed_tcp, hist.bad_html
    );
    body.push_str(
        "paper (Fig. 7): gambling, informative media and streaming dominate; the\nInformative Media category has the most blocked domains.\n",
    );
    ExperimentReport { id: "fig7", title: "Fig. 7 blocked-domain categories", body }
}

/// Table 3: blocking types per domain.
pub fn table3() -> ExperimentReport {
    let universe = universe();
    let mut lab = VantageLab::builder().universe(&universe).table1().build();
    // The named anchors plus a sample establish each type's membership.
    let probe: Vec<&str> = vec![
        "infox.sg", "tor.eff.org", "theins.ru", "twimg.com", "t.co", "facebook.com",
        "twitter.com", "dw.com", "instagram.com", "meduza.io", "bbc.com",
        "nordaccount.com", "play.google.com", "news.google.com", "nordvpn.com",
        "messenger.com", "cdninstagram.com", "web.facebook.com",
        "wikipedia.org", "rust-lang.org",
    ];
    let campaign = domains::run_campaign(&mut lab, probe.iter().copied());

    let mut by_type: std::collections::BTreeMap<&str, Vec<String>> = Default::default();
    for (domain, verdict) in &campaign.tspu {
        let label = match verdict {
            DomainVerdict::Open => "open",
            DomainVerdict::Sni1 => "SNI-I",
            DomainVerdict::Sni2 => "SNI-II",
            DomainVerdict::Sni4 => "SNI-IV",
            DomainVerdict::Throttled => "SNI-III",
        };
        by_type.entry(label).or_default().push(domain.clone());
    }
    let mut body = String::new();
    for (label, mut domains) in by_type {
        domains.sort();
        let _ = writeln!(body, "{label:<8}: {}", domains.join(", "));
    }
    // Full-scale count from the ground-truth policy.
    let _ = writeln!(
        body,
        "\nfull SNI-I list size: {} (paper Table 3: 9,899)",
        lab.policy.read().sni_rst.len()
    );
    let _ = writeln!(body, "SNI-II list: {:?}", {
        let policy = lab.policy.read();
        let mut v: Vec<String> = policy.sni_slow.iter().map(str::to_string).collect();
        v.sort();
        v
    });
    body.push_str("paper Table 3's SNI-II list: nordaccount.com, play.google.com,\nnews.google.com, nordvpn.com; SNI-IV: twimg.com, t.co, messenger.com,\ncdninstagram.com, twitter.com, web.facebook.com, numbuster.ru.\n");
    ExperimentReport { id: "table3", title: "Table 3 domain blocking types", body }
}

/// §5.1 attribution (extension): the paper tells TSPU blocking apart from
/// ISP blocking by its *uniformity*. Three ISPs with different legacy
/// equipment (DNS blockpage, HTTP keyword DPI, nothing) all overlay the
/// same TSPU: the port-443 behavior is identical everywhere while the
/// legacy layer differs per ISP — the attribution signal.
pub fn attribution() -> ExperimentReport {
    use std::net::Ipv4Addr;
    use std::time::Duration;
    use tspu_core::{Policy, PolicyHandle, TspuDevice};
    use tspu_ispdpi::HttpKeywordDpi;
    use tspu_netsim::{Direction, Network, Route, RouteStep};
    use tspu_stack::craft::TcpPacketSpec;
    use tspu_wire::http::HttpRequest;
    use tspu_wire::ipv4::Ipv4Packet;
    use tspu_wire::tcp::{TcpFlags, TcpSegment};
    use tspu_wire::tls::ClientHelloBuilder;

    let domain = "blocked-site.ru";
    let policy = PolicyHandle::new({
        let mut p = Policy::default();
        p.sni_rst.insert(domain);
        p
    });

    let mut net = Network::with_default_latency();
    let server_addr = Ipv4Addr::new(203, 0, 113, 50);
    let server = net.add_host(server_addr);

    // Three ISPs: legacy equipment differs, the TSPU is the same model
    // with the same central policy.
    let mut isps = Vec::new();
    for (i, (name, legacy)) in [
        ("ISP-A (DNS blockpage)", "dns"),
        ("ISP-B (HTTP keyword DPI)", "http"),
        ("ISP-C (no legacy gear)", "none"),
    ]
    .into_iter()
    .enumerate()
    {
        let client_addr = Ipv4Addr::new(10, 40 + i as u8, 0, 2);
        let client = net.add_host(client_addr);
        let tspu = net.add_middlebox(Box::new(TspuDevice::reliable(name, policy.clone())));
        let hop_a = Ipv4Addr::new(10, 40 + i as u8, 255, 1);
        let hop_b = Ipv4Addr::new(10, 40 + i as u8, 255, 2);
        let mut step_a = RouteStep::router(hop_a);
        if legacy == "http" {
            let mut list = std::collections::HashSet::new();
            list.insert(domain.to_string());
            let dpi = net.add_middlebox(Box::new(HttpKeywordDpi::new(name, list)));
            step_a.devices.push((dpi, Direction::LocalToRemote));
        }
        let step_b = RouteStep::with_device(hop_b, tspu, Direction::LocalToRemote);
        net.set_route(client, server, Route { steps: vec![step_a.clone(), step_b] });
        net.set_route(
            server,
            client,
            Route {
                steps: vec![
                    RouteStep::with_device(hop_b, tspu, Direction::RemoteToLocal),
                    RouteStep::router(hop_a),
                ],
            },
        );
        isps.push((name, legacy, client, client_addr));
    }

    let mut body = String::from(
        "one domain, three ISPs, three observables (DNS / HTTP / HTTPS):

         ISP                       DNS            HTTP:80          HTTPS:443 (TSPU layer)
",
    );
    for (name, legacy, client, client_addr) in isps {
        // DNS observable (the resolver layer is per-ISP policy).
        let dns = if legacy == "dns" { "blockpage IP" } else { "real IP" };

        // HTTP observable: does the GET reach the server?
        let _ = net.take_inbox(server);
        let get = TcpPacketSpec::new(client_addr, 33_000, server_addr, 80, TcpFlags::PSH_ACK)
            .payload(HttpRequest::get(domain, "/").build())
            .build();
        net.send_from(client, get);
        net.run_for(Duration::from_millis(300));
        let http = if net.take_inbox(server).is_empty() { "swallowed (timeout)" } else { "reaches server" };

        // HTTPS observable: handshake + CH, then the response.
        for (flags, from_client) in [(TcpFlags::SYN, true), (TcpFlags::SYN_ACK, false), (TcpFlags::ACK, true)] {
            let pkt = if from_client {
                TcpPacketSpec::new(client_addr, 33_100, server_addr, 443, flags).build()
            } else {
                TcpPacketSpec::new(server_addr, 443, client_addr, 33_100, flags).build()
            };
            net.send_from(if from_client { client } else { server }, pkt);
            net.run_for(Duration::from_millis(120));
        }
        let ch = TcpPacketSpec::new(client_addr, 33_100, server_addr, 443, TcpFlags::PSH_ACK)
            .payload(ClientHelloBuilder::new(domain).build())
            .build();
        net.send_from(client, ch);
        net.run_for(Duration::from_millis(200));
        let _ = net.take_inbox(client);
        let reply = TcpPacketSpec::new(server_addr, 443, client_addr, 33_100, TcpFlags::PSH_ACK)
            .payload(vec![0xaa; 120])
            .build();
        net.send_from(server, reply);
        net.run_for(Duration::from_millis(300));
        let https = net
            .take_inbox(client)
            .iter()
            .find_map(|(_, bytes)| {
                let ip = Ipv4Packet::new_checked(&bytes[..]).ok()?;
                let seg = TcpSegment::new_checked(ip.payload()).ok()?;
                Some(if seg.flags() == TcpFlags::RST_ACK { "RST/ACK rewrite" } else { "data arrives" })
            })
            .unwrap_or("silence");
        let _ = writeln!(body, "{name:<26}{dns:<15}{http:<21}{https}");
    }
    body.push_str(concat!(
        "
paper (§5.1): 'TSPU blocking should show a high degree of uniformity in
",
        "blocking behaviors across ISPs … in contrast to blocking performed by
",
        "individual ISPs' — the HTTPS column is identical everywhere, the legacy
",
        "columns are not. That uniformity is the attribution criterion.
",
    ));
    ExperimentReport { id: "attribution", title: "§5.1 attribution by uniformity (extension)", body }
}

/// Table 7: OS/spec timeout reference vs the TSPU.
pub fn table7() -> ExperimentReport {
    let mut body = String::from("system     state                                    timeout (s)\n");
    for row in os_reference::TABLE7 {
        let _ = writeln!(body, "{:<11}{:<41}{}", row.system, row.state, row.timeout_secs);
    }
    let _ = writeln!(body, "\nTSPU measured: {:?}", os_reference::TSPU_MEASURED);
    let _ = writeln!(
        body,
        "any documented system matches the TSPU: {} (paper: none)",
        os_reference::any_system_matches_tspu()
    );
    ExperimentReport { id: "table7", title: "Table 7 OS timeout reference", body }
}
