//! One function per paper artifact. Every report prints the paper's
//! number next to the reproduction's measurement; deviations carry a note.

mod how;
mod what;
mod r#where;

use tspu_registry::Universe;

pub use how::{behavior_sanity, fig13, fig14, fig2, fig3, fig4, fig5, table1, table2, table8};
pub use r#where::{arch_compare, fig10_11, fig12, fig8, fig9, local_ttl, table4, table5, upstream_only};
pub use what::{attribution, fig6, fig7, table3, table7};

/// A regenerated artifact.
pub struct ExperimentReport {
    /// Short id used by `TSPU_ONLY` filtering (e.g. `table1`, `fig9`).
    pub id: &'static str,
    pub title: &'static str,
    pub body: String,
}

impl ExperimentReport {
    /// Renders with a banner.
    pub fn render(&self) -> String {
        format!(
            "\n==============================================================\n{} — {}\n==============================================================\n{}\n",
            self.id, self.title, self.body
        )
    }
}

/// The shared domain universe (seeded like everything else).
pub fn universe() -> Universe {
    Universe::generate(2022)
}

/// Circumvention matrix (§8).
pub fn circumvention() -> ExperimentReport {
    let universe = universe();
    let rows = tspu_circumvent::evaluate_matrix(&universe);
    let mut body = String::new();
    body.push_str("strategy                              | side   | target  | sym-only | +upstream\n");
    body.push_str("--------------------------------------+--------+---------+----------+----------\n");
    for row in rows {
        for (label, sym, upstream) in &row.outcomes {
            body.push_str(&format!(
                "{:<38}| {:<7}| {:<8}| {:<9}| {}\n",
                row.strategy,
                if row.server_side { "server" } else { "client" },
                label,
                if *sym { "EVADES" } else { "blocked" },
                if *upstream { "EVADES" } else { "blocked" },
            ));
        }
    }
    body.push_str(
        "\npaper (§8): split handshake works for SNI-I sites; server-side strategies\n\
         can fail against upstream-only devices; segmentation/fragmentation/CH\n\
         modifications evade; TTL-limited insertion is mitigated; QUIC drops only v1.\n",
    );
    ExperimentReport { id: "circumvention", title: "§8 circumvention matrix", body }
}

/// The §8 arms race: the same strategy matrix against fully hardened
/// devices (every patch the paper predicts, at once).
pub fn arms_race() -> ExperimentReport {
    let universe = universe();
    let baseline = tspu_circumvent::evaluate_matrix(&universe);
    let hardened = tspu_circumvent::evaluate_matrix_hardened(&universe);
    let mut body = String::new();
    body.push_str("strategy                              | target  | 2022 TSPU | hardened
");
    body.push_str("--------------------------------------+---------+-----------+---------
");
    for (base_row, hard_row) in baseline.iter().zip(hardened.iter()) {
        for (base_cell, hard_cell) in base_row.outcomes.iter().zip(hard_row.outcomes.iter()) {
            let fmt = |evades: bool| if evades { "EVADES" } else { "blocked" };
            body.push_str(&format!(
                "{:<38}| {:<8}| {:<10}| {}
",
                base_row.strategy,
                base_cell.0,
                fmt(base_cell.1),
                fmt(hard_cell.1),
            ));
        }
    }
    body.push_str(
        "
paper (§8): 'The TSPU could easily patch these evasion strategies …
         assuming it is provisioned with enough computation and memory
         resources.' The hardened column applies every predicted patch (TCP/IP
         reassembly, window filtering, ad-hoc role reasoning, record scanning);
         only the QUIC version change survives, since that filter is keyed to a
         wire version rather than resource-bounded parsing. The perf bench
         measures the reassembly resource bill.
",
    );
    ExperimentReport { id: "arms_race", title: "§8 predicted patches (extension)", body }
}

/// Runs everything (respecting `TSPU_ONLY`).
pub fn run_all() -> Vec<ExperimentReport> {
    let only: Option<Vec<String>> = std::env::var("TSPU_ONLY")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let wanted = |id: &str| only.as_ref().map(|o| o.iter().any(|x| x == id)).unwrap_or(true);

    type NamedExperiment = (&'static str, fn() -> ExperimentReport);
    let all: Vec<NamedExperiment> = vec![
        ("fig2", fig2),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("table1", table1),
        ("table2", table2),
        ("table8", table8),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig6", fig6),
        ("fig7", fig7),
        ("table3", table3),
        ("table7", table7),
        ("attribution", attribution),
        ("local_ttl", local_ttl),
        ("upstream_only", upstream_only),
        ("fig8", fig8),
        ("table4", table4),
        ("table5", table5),
        ("fig9", fig9),
        ("fig10_11", fig10_11),
        ("fig12", fig12),
        ("circumvention", circumvention),
        ("arms_race", arms_race),
        ("arch_compare", arch_compare),
    ];
    all.into_iter()
        .filter(|(id, _)| wanted(id))
        .map(|(id, f)| {
            let started = std::time::Instant::now();
            let report = f();
            eprintln!("[{} done in {:.1?}]", id, started.elapsed());
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fast experiments run as unit tests so `cargo test` exercises
    /// the regeneration paths (the slow ones run under `cargo bench`).
    #[test]
    fn fast_experiments_produce_reports() {
        for (id, f) in [
            ("fig3", fig3 as fn() -> ExperimentReport),
            ("fig13", fig13),
            ("fig14", fig14),
            ("table7", table7),
        ] {
            let report = f();
            assert_eq!(report.id, id);
            assert!(!report.body.is_empty(), "{id} body");
            assert!(report.render().contains(report.title));
        }
    }

    #[test]
    fn behavior_sanity_holds() {
        assert!(behavior_sanity());
    }

    #[test]
    fn tspu_only_filter_respected() {
        std::env::set_var("TSPU_ONLY", "table7");
        let reports = run_all();
        std::env::remove_var("TSPU_ONLY");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].id, "table7");
    }
}
