//! "Where does the TSPU block?" — §7's artifacts: local TTL localization,
//! upstream-only detection, Table 4 (echo), Table 5 (correlations),
//! Fig. 9 (per-port scan), Figs. 10–11 (TSPU links), Fig. 12 (hops from
//! destination).

use std::collections::HashMap;
use std::fmt::Write as _;

use tspu_measure::sweep::{RunOpts, ScanPool};
use tspu_measure::{echo, fragscan, traceroute, LocalizeSpec};
use tspu_registry::Universe;
use tspu_topology::{policy_from_universe, PlacementModel, Runet, RunetConfig};

use super::{universe, ExperimentReport};
use crate::env_f64;

fn runet() -> Runet {
    let universe = Universe::generate(2022);
    let config = RunetConfig {
        scale: env_f64("TSPU_SCALE", 0.004),
        ..RunetConfig::default()
    };
    Runet::generate(&universe, config)
}

/// §7.1: TTL localization from the vantage points, one pooled trial per
/// TTL (the sweep is embarrassingly parallel: every trial is its own lab).
pub fn local_ttl() -> ExperimentReport {
    let policy = policy_from_universe(&universe(), false, true);
    let pool = ScanPool::from_env();
    let mut body = String::new();
    for vantage in ["Rostelecom", "ER-Telecom", "OBIT"] {
        let found = LocalizeSpec::symmetric(policy.clone(), vantage)
            .port_base(55_000)
            .run(&pool, &RunOpts::quick())
            .first();
        let _ = writeln!(
            body,
            "{vantage}: symmetric TSPU between hop {} and {} (paper: within the first 3 hops)",
            found.map(|d| d.after_hop).unwrap_or(0),
            found.map(|d| d.after_hop + 1).unwrap_or(0)
        );
    }
    ExperimentReport { id: "local_ttl", title: "§7.1 local TTL localization", body }
}

/// §7.1.1: upstream-only device detection (Fig. 8 left), pooled.
pub fn upstream_only() -> ExperimentReport {
    let policy = policy_from_universe(&universe(), false, true);
    let pool = ScanPool::from_env();
    let mut body = String::new();
    for (vantage, paper) in [
        ("Rostelecom", "one, one hop behind the symmetric device (same AS)"),
        ("ER-Telecom", "none"),
        ("OBIT", "two, at the first link of the transit ISPs (per destination)"),
    ] {
        let found = LocalizeSpec::upstream(policy.clone(), vantage)
            .port_base(56_000)
            .run(&pool, &RunOpts::quick())
            .devices;
        let _ = writeln!(
            body,
            "{vantage}: {} upstream-only device(s) found at hop boundaries {:?}  (paper: {paper})",
            found.len(),
            found.iter().map(|d| d.after_hop).collect::<Vec<_>>()
        );
    }
    body.push_str("note: the sweep probes one destination (the US machine); OBIT's second\ntransit device sits on the France-bound path and is found when sweeping\nthat destination.\n");
    ExperimentReport { id: "upstream_only", title: "§7.1.1 upstream-only devices", body }
}

/// Fig. 8: both halves of the partial-visibility experiment, narrated.
pub fn fig8() -> ExperimentReport {
    let mut body = String::new();

    // Left: identify upstream-only devices from a vantage point.
    let policy = policy_from_universe(&universe(), false, true);
    let found = LocalizeSpec::upstream(policy, "Rostelecom")
        .port_base(57_000)
        .run(&ScanPool::from_env(), &RunOpts::quick())
        .devices;
    body.push_str(concat!(
        "left (from a vantage point): the US machine opens the connection, so
",
        "the symmetric TSPU sees a remote client and stays quiet; the RU side's
",
        "SYN/ACK is the *first* packet an upstream-only device sees, making it
",
        "treat the RU side as a client toward port 443. A TTL-limited SNI-II
",
        "ClientHello then walks the path until the delayed-drop verdict appears:
",
    ));
    let _ = writeln!(
        body,
        "  Rostelecom: upstream-only device found after hop {:?} (paper: one hop
  behind the symmetric device)",
        found.first().map(|d| d.after_hop)
    );

    // Right: the echo technique against a remote echo server.
    let mut net = runet();
    let target = net
        .echo_servers()
        .find(|e| e.behind_upstream_only && !e.behind_symmetric)
        .map(|e| e.addr);
    if let Some(addr) = target {
        let with_443 = echo::echo_measurement(&mut net, addr, 443);
        let with_ephemeral = echo::echo_measurement(&mut net, addr, 51_777);
        body.push_str(concat!(
            "
right (remote echo measurement): handshake to TCP/7, send a
",
            "ClientHello with an SNI-II domain, then 20 random packets; the echoed
",
            "CH triggers the upstream-only device on the server's outbound path:
",
        ));
        let _ = writeln!(
            body,
            "  source port 443:      control {}/20, trigger {}/20 -> {}",
            with_443.control_received,
            with_443.trigger_received,
            if with_443.tspu_positive() { "TSPU DETECTED" } else { "negative" }
        );
        let _ = writeln!(
            body,
            "  ephemeral source port: control {}/20, trigger {}/20 -> {}",
            with_ephemeral.control_received,
            with_ephemeral.trigger_received,
            if with_ephemeral.tspu_positive() { "TSPU DETECTED" } else { "negative" }
        );
        body.push_str(
            "
paper (§7.2): 'to trigger blocking, the client (ephemeral) port on the
Paris machine needs to be set to 443' — the role-reversal confirmation.
",
        );
    }
    ExperimentReport { id: "fig8", title: "Fig. 8 partial-visibility protocols", body }
}

/// Table 4: echo-server funnel.
pub fn table4() -> ExperimentReport {
    let mut net = runet();
    let funnel = echo::run_table4(&mut net);
    let scale = net.config.scale;
    let body = format!(
        "                      measured   paper (full scale)\n\
         echo IPs discovered   {:<10} 1,404\n\
         … ASes (networks)     {} ({})    188 (344)\n\
         nmap-filtered IPs     {:<10} 1,136\n\
         … ASes                {:<10} 47\n\
         TSPU-positive IPs     {:<10} 417\n\
         … ASes                {:<10} 15\n\
         \nscale = {scale} of the paper's population; the funnel *shape*\n\
         (discovered > filtered > positive; positives concentrated in few\n\
         ASes with upstream-only transit coverage) is the reproduced claim.\n",
        funnel.discovered_ips,
        funnel.discovered_ases,
        funnel.discovered_networks,
        funnel.filtered_ips,
        funnel.filtered_ases,
        funnel.positive_ips,
        funnel.positive_ases,
    );
    ExperimentReport { id: "table4", title: "Table 4 echo measurements", body }
}

/// Table 5: correlations between IP blocking, echo, and fragmentation.
pub fn table5() -> ExperimentReport {
    let mut net = runet();
    let mut body = String::new();

    // Echo vs IP (upper half): over the filtered echo servers.
    let echo_targets: Vec<_> = net
        .echo_servers()
        .filter(|e| e.label != tspu_topology::runet::DeviceLabel::EndUser)
        .map(|e| (e.addr, e.port))
        .collect();
    let (mut nn, mut nb, mut bn, mut bb) = (0u32, 0u32, 0u32, 0u32);
    let mut sport = 30_000u16;
    for (addr, _port) in &echo_targets {
        sport = sport.wrapping_add(3).max(30_000);
        let echo_blocked = echo::echo_measurement(&mut net, *addr, 443).tspu_positive();
        let ip_blocked = fragscan::ip_block_probe(&mut net, *addr, 7, sport);
        match (ip_blocked, echo_blocked) {
            (false, false) => nn += 1,
            (false, true) => nb += 1,
            (true, false) => bn += 1,
            (true, true) => bb += 1,
        }
    }
    let hamming = f64::from(nb + bn) / f64::from((nn + nb + bn + bb).max(1));
    let _ = writeln!(body, "echo vs IP blocking ({} echo servers):", echo_targets.len());
    let _ = writeln!(body, "              Echo(N)  Echo(B)");
    let _ = writeln!(body, "  IP (N)      {nn:<9}{nb}");
    let _ = writeln!(body, "  IP (B)      {bn:<9}{bb}");
    let _ = writeln!(body, "  Hamming distance: {hamming:.4}  (paper: 0.0493 over 1,134)\n");

    // Fragmentation vs IP (lower half): over port-7547 endpoints.
    let frag_targets: Vec<_> = net
        .endpoints_with_port(7547)
        .filter(|e| e.label != tspu_topology::runet::DeviceLabel::EndUser)
        .map(|e| (e.addr, e.port))
        .collect();
    let (mut nn, mut nb, mut bn, mut bb) = (0u32, 0u32, 0u32, 0u32);
    for (i, (addr, port)) in frag_targets.iter().enumerate() {
        let sport = 40_000u16.wrapping_add(i as u16 * 5);
        let verdict = fragscan::fingerprint(&mut net, *addr, *port, sport);
        if !verdict.responsive() {
            continue;
        }
        let frag_blocked = verdict.tspu_positive();
        let ip_blocked = fragscan::ip_block_probe(&mut net, *addr, *port, sport.wrapping_add(3));
        match (ip_blocked, frag_blocked) {
            (false, false) => nn += 1,
            (false, true) => nb += 1,
            (true, false) => bn += 1,
            (true, true) => bb += 1,
        }
    }
    let hamming = f64::from(nb + bn) / f64::from((nn + nb + bn + bb).max(1));
    let _ = writeln!(body, "fragmentation vs IP blocking ({} port-7547 infra endpoints):", frag_targets.len());
    let _ = writeln!(body, "              Frag(N)  Frag(B)");
    let _ = writeln!(body, "  IP (N)      {nn:<9}{nb}");
    let _ = writeln!(body, "  IP (B)      {bn:<9}{bb}");
    let _ = writeln!(body, "  Hamming distance: {hamming:.4}  (paper: 0.0199 over 8,631)");
    body.push_str(
        "\npaper (Table 5): both fingerprints correlate strongly with IP blocking;\nIP(B)&Frag(N) disagreements are upstream-only devices (IP enforcement\nwithout downstream fragment visibility).\n",
    );
    ExperimentReport { id: "table5", title: "Table 5 fingerprint correlations", body }
}

/// Fig. 9: the country scan by port.
pub fn fig9() -> ExperimentReport {
    let mut net = runet();
    let total_endpoints = net.endpoints.len();
    let total_ases = net.ases.len();
    let (rows, ases_seen, ases_positive) = fragscan::run_port_scan(&mut net, 1);
    let mut body = format!(
        "scanned {total_endpoints} endpoints across {total_ases} ASes (scale {} of the paper's 4,005,138)\n\nport    endpoints  TSPU-positive  %        paper-shape\n",
        net.config.scale
    );
    let paper_note = |port: u16| match port {
        7547 => "highest (residential CPE, ~63%)",
        58000 => "high (CPE/STB)",
        8080 => "mid",
        80 | 443 | 22 | 21 => "low (servers, ~8-17%)",
        _ => "",
    };
    let mut total = 0usize;
    let mut positive = 0usize;
    for row in &rows {
        total += row.endpoints;
        positive += row.positive;
        let _ = writeln!(
            body,
            "{:<8}{:<11}{:<15}{:<9.1}{}",
            row.port,
            row.endpoints,
            row.positive,
            row.percent(),
            paper_note(row.port)
        );
    }
    let pct = 100.0 * positive as f64 / total.max(1) as f64;
    let _ = writeln!(
        body,
        "\ntotals: {positive}/{total} = {pct:.2}% positive (paper: 1,013,600/4,005,138 = 25.31%)\nASes with positives: {ases_positive}/{ases_seen} (paper: 650/4,986 = 13.0%)"
    );
    // §7.3's lower bound, quantified: ground truth includes devices the
    // scan cannot see (behind CG-NAT, upstream-only).
    let truth_covered = net.endpoints.iter().filter(|e| e.behind_symmetric).count();
    let truth_hidden_nat = net
        .endpoints
        .iter()
        .filter(|e| e.behind_symmetric && e.behind_nat)
        .count();
    let _ = writeln!(
        body,
        "ground truth: {truth_covered} endpoints behind a symmetric device, of which\n{truth_hidden_nat} sit behind CG-NAT and are invisible to the scan — the measured\ncount is a lower bound, as §7.3 warns ('we only identify the TSPU devices\nthat are, against Roskomnadzor's recommendation, outside a NAT')."
    );
    let ratio = {
        let rate = |p: u16| rows.iter().find(|r| r.port == p).map(|r| r.percent()).unwrap_or(0.0);
        rate(7547) / rate(80).max(0.1)
    };
    let _ = writeln!(
        body,
        "port 7547 vs port 80 positivity ratio: {ratio:.1}x (paper: 'over 300% more likely')"
    );
    ExperimentReport { id: "fig9", title: "Fig. 9 endpoints with TSPU by port", body }
}

/// Figs. 10–11: traceroutes and TSPU links.
pub fn fig10_11() -> ExperimentReport {
    let mut net = runet();
    let mut body = String::new();

    // Sample positive endpoints, localize, and cluster links.
    let all_positives: Vec<_> = net
        .endpoints
        .iter()
        .filter(|e| e.behind_symmetric && !e.behind_nat)
        .cloned()
        .collect();
    // Sample evenly across the country, not from the first ASes.
    let stride = (all_positives.len() / 600).max(1);
    let positives: Vec<_> = all_positives.into_iter().step_by(stride).take(600).collect();
    let mut links = Vec::new();
    let mut by_owner: HashMap<u32, usize> = HashMap::new();
    for (i, e) in positives.iter().enumerate() {
        let sport = 42_000u16.wrapping_add(i as u16 * 3);
        let trace = traceroute::traceroute(&mut net, e.addr, e.port, sport, 30);
        let Some(flip) = fragscan::localize_device_ttl(&mut net, e.addr, e.port, sport, 30) else {
            continue;
        };
        if let Some(link) = traceroute::identify_link(&trace, flip) {
            if let Some(owner) = net.hop_owner.get(&link.before) {
                *by_owner.entry(*owner).or_default() += 1;
            }
            links.push(link);
        }
    }
    let unique = traceroute::cluster_links(&links);
    let _ = writeln!(
        body,
        "localized {} endpoints -> {} unique TSPU links (paper: >1M traceroutes -> 6,871 links)",
        links.len(),
        unique
    );

    // Fig. 11: provider-hosted links serving small ISPs.
    let provider_owned = by_owner.get(&12_389).copied().unwrap_or(0);
    let caas: Vec<_> = net
        .ases
        .iter()
        .filter(|a| a.coverage == tspu_topology::Coverage::ProviderSymmetric)
        .take(3)
        .map(|a| a.asn)
        .collect();
    let _ = writeln!(
        body,
        "\nTSPU links whose hop-before belongs to the transit provider (AS12389):\n{provider_owned} — censorship-as-a-service for small customer ISPs (paper Fig. 11:\nTyumen ISPs served by links inside Rostelecom). Covered small-ISP ASes\nsampled: {caas:?}"
    );

    // One annotated traceroute.
    if let Some(e) = positives.first() {
        let trace = traceroute::traceroute(&mut net, e.addr, e.port, 47_000, 30);
        let flip = fragscan::localize_device_ttl(&mut net, e.addr, e.port, 47_100, 30);
        let _ = writeln!(body, "\nexample traceroute to {} (port {}):", e.addr, e.port);
        for (i, hop) in trace.hops.iter().enumerate() {
            let marker = match flip {
                Some(f) if i + 2 == f as usize => "   <== TSPU link starts here",
                _ => "",
            };
            let owner = hop
                .and_then(|h| net.hop_owner.get(&h))
                .map(|o| format!(" (AS{o})"))
                .unwrap_or_default();
            let _ = writeln!(
                body,
                "  hop {:>2}: {}{}{}",
                i + 1,
                hop.map(|h| h.to_string()).unwrap_or_else(|| "*".into()),
                owner,
                marker
            );
        }
    }
    ExperimentReport { id: "fig10_11", title: "Figs. 10-11 traceroutes & TSPU links", body }
}

/// Architecture comparison (extension of §9's GFW contrast): the same
/// country under leaf-TSPU vs choke-point placement.
pub fn arch_compare() -> ExperimentReport {
    let universe = Universe::generate(2022);
    let scale = env_f64("TSPU_SCALE", 0.004).min(0.002); // this one builds two countries
    let mut body = String::new();

    let mut summarize = |name: &str, placement: PlacementModel| {
        let config = RunetConfig { scale, placement, ..RunetConfig::default() };
        let mut net = Runet::generate(&universe, config);
        let covered = net.endpoints.iter().filter(|e| e.behind_symmetric).count();
        let mean_hops: f64 = {
            let hops: Vec<usize> = net.endpoints.iter().filter_map(|e| e.device_hops).collect();
            hops.iter().sum::<usize>() as f64 / hops.len().max(1) as f64
        };
        // Offered load: one scan probe per endpoint; measure the busiest
        // device.
        let targets: Vec<_> = net
            .endpoints
            .iter()
            .step_by(4)
            .map(|e| (e.addr, e.port))
            .collect();
        for (i, (addr, port)) in targets.iter().enumerate() {
            let syn = tspu_stack::craft::TcpPacketSpec::new(
                net.scanner_addr,
                2048u16.wrapping_add(i as u16),
                *addr,
                *port,
                tspu_wire::tcp::TcpFlags::SYN,
            )
            .build();
            net.net.send_from(net.scanner, syn);
        }
        net.net.run_until_idle();
        let busiest = net
            .devices
            .iter()
            .map(|&d| net.net.middlebox(d).stats().packets_seen)
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            body,
            "{name:<22} devices={:<6} coverage={:.1}%  mean-hops-from-user={:.1}  busiest-device-pkts={}",
            net.devices.len(),
            100.0 * covered as f64 / net.endpoints.len() as f64,
            mean_hops,
            busiest
        );
    };
    summarize("TSPU (leaf placement)", PlacementModel::LeafTspu);
    summarize("GFW (choke points)", PlacementModel::ChokePointGfw);
    body.push_str(concat!(
        "
paper (§9): the GFW concentrates a few heavily-loaded boxes at choke
",
        "points far from users; the TSPU buys the opposite trade — thousands of
",
        "lightly-loaded commodity boxes next to users, residential-only coverage,
",
        "and a position 'much better suited to perform targeted surveillance and
",
        "machine-in-the-middle attacks'.
",
    ));
    ExperimentReport { id: "arch_compare", title: "§9 TSPU vs GFW placement (extension)", body }
}

/// Fig. 12: histogram of device hops from the destination.
pub fn fig12() -> ExperimentReport {
    let mut net = runet();
    let all_positives: Vec<_> = net
        .endpoints
        .iter()
        .filter(|e| e.behind_symmetric && !e.behind_nat)
        .cloned()
        .collect();
    // Sample evenly across the country, not from the first ASes.
    let stride = (all_positives.len() / 800).max(1);
    let positives: Vec<_> = all_positives.into_iter().step_by(stride).take(800).collect();
    let mut histogram: HashMap<usize, usize> = HashMap::new();
    let mut measured = 0usize;
    for (i, e) in positives.iter().enumerate() {
        let sport = 52_000u16.wrapping_add(i as u16 * 3);
        let Some(flip) = fragscan::localize_device_ttl(&mut net, e.addr, e.port, sport, 30) else {
            continue;
        };
        let Some(path_len) = net.net.route(net.scanner, e.host).map(|r| r.steps.len()) else {
            continue;
        };
        let hops = path_len + 2 - flip as usize;
        *histogram.entry(hops).or_default() += 1;
        measured += 1;
    }
    let mut body = String::from("hops-from-destination histogram (TTL-flip localization):\n");
    let mut keys: Vec<usize> = histogram.keys().copied().collect();
    keys.sort();
    for k in keys {
        let count = histogram[&k];
        let _ = writeln!(body, "  {k:>2} hops: {:<6} {}", count, "#".repeat(count * 60 / measured.max(1)));
    }
    let close = histogram.iter().filter(|(k, _)| **k <= 2).map(|(_, v)| v).sum::<usize>();
    let frac = 100.0 * close as f64 / measured.max(1) as f64;
    let _ = writeln!(
        body,
        "\nwithin two hops of the destination: {frac:.1}% (paper: 'over 69% of cases')"
    );
    body.push_str("paper (Fig. 12): TSPU devices sit close to network leaves, not at the\nborder or backbone — the opposite of the GFW's choke-point placement.\n");
    ExperimentReport { id: "fig12", title: "Fig. 12 device distance from endpoints", body }
}
