//! "How does the TSPU block?" — §5's artifacts: Fig. 2 (behaviors),
//! Fig. 3 (fragment handling), Fig. 4 (trigger sequences), Fig. 5 +
//! Table 2 (timeouts), Table 1 (reliability), Table 8 (sequence
//! timeouts), Fig. 13 (ClientHello map), Fig. 14 (QUIC fingerprint).

use std::fmt::Write as _;
use std::time::Duration;

use tspu_measure::behaviors::classify_behavior;
use tspu_measure::harness::{handshake_prefix, run_script, ProbeSide, ScriptEnd, ScriptStep};
use tspu_measure::reliability::{run_cell, Mechanism};
use tspu_measure::sequences;
use tspu_measure::timeouts;
use tspu_measure::{chfuzz, quicfp};
use tspu_netsim::Time;
use tspu_registry::stats::table1 as paper_table1;
use tspu_topology::VantageLab;
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::ClientHelloBuilder;

use super::{universe, ExperimentReport};
use crate::env_usize;

fn lab() -> VantageLab {
    VantageLab::builder().universe(&universe()).table1().build()
}

/// Fig. 2: packet traces of the blocking behaviors, as seen from both
/// endpoints.
pub fn fig2() -> ExperimentReport {
    let mut lab = lab();
    let mut body = String::new();

    let mut trace = |title: &str, domain: &str, prefix: Vec<ScriptStep>, port: u16| {
        let vantage = lab.vantage("ER-Telecom");
        let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port };
        let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
        let mut steps = prefix;
        steps.push(
            ScriptStep::new(ProbeSide::Local, TcpFlags::PSH_ACK)
                .payload(ClientHelloBuilder::new(domain).build()),
        );
        for i in 0..9u8 {
            steps.push(
                ScriptStep::new(ProbeSide::Remote, TcpFlags::PSH_ACK).payload(vec![0xd0 + i; 120]),
            );
        }
        let result = run_script(&mut lab.net, local, remote, &steps);
        let _ = writeln!(body, "--- {title} (SNI: {domain}) ---");
        let _ = writeln!(body, "  remote end received:");
        for p in &result.at_remote {
            let _ = writeln!(
                body,
                "    {} {:<8} len={} {}",
                p.time,
                format!("{}", p.flags),
                p.payload_len,
                p.sni.as_deref().map(|s| format!("ClientHello({s})")).unwrap_or_default()
            );
        }
        let _ = writeln!(body, "  local end received:");
        for p in &result.at_local {
            let _ = writeln!(
                body,
                "    {} {:<8} len={}{}",
                p.time,
                format!("{}", p.flags),
                p.payload_len,
                if p.is_rst_ack { "  <-- rewritten by TSPU" } else { "" }
            );
        }
        body.push('\n');
    };

    trace("SNI-I: RST/ACK response rewriting", "meduza.io", handshake_prefix(), 35001);
    trace("SNI-II: delayed symmetric drop", "play.google.com", handshake_prefix(), 35002);
    trace(
        "SNI-IV: backup full drop (after split handshake evades SNI-I)",
        "twitter.com",
        vec![
            ScriptStep::new(ProbeSide::Local, TcpFlags::SYN),
            ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
        ],
        35003,
    );
    trace("control: unblocked domain", "rust-lang.org", handshake_prefix(), 35004);

    body.push_str("paper (Fig. 2): SNI-I rewrites downstream packets to RST/ACK; SNI-II lets\n5–8 more packets through then drops both ways; SNI-IV eats everything\nincluding the ClientHello.\n");
    ExperimentReport { id: "fig2", title: "Fig. 2 blocking behaviors", body }
}

/// Fig. 3: fragment buffering, flush-on-last, and TTL rewrite.
pub fn fig3() -> ExperimentReport {
    use tspu_core::frag_cache::FragCache;
    use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};

    let mut body = String::new();
    let mut cache = FragCache::default();
    let payload: Vec<u8> = (0..900u16).map(|i| i as u8).collect();
    let mut repr = Ipv4Repr::new(
        std::net::Ipv4Addr::new(10, 0, 0, 1),
        std::net::Ipv4Addr::new(203, 0, 113, 1),
        Protocol::Udp,
        payload.len(),
    );
    repr.ttl = 61;
    repr.ident = 0x1111;
    let datagram = repr.build(&payload);
    let mut fragments = tspu_wire::frag::fragment(&datagram, 304).unwrap();
    // The trailing fragments arrive with lower TTLs (longer path).
    for fragment in fragments.iter_mut().skip(1) {
        let mut view = Ipv4Packet::new_unchecked(&mut fragment[..]);
        view.set_ttl(55);
        view.fill_checksum();
    }
    let mut now = Time::ZERO;
    for (i, fragment) in fragments.iter().enumerate() {
        let view = Ipv4Packet::new_unchecked(&fragment[..]);
        let out = cache.offer(now, fragment);
        let _ = writeln!(
            body,
            "t={} frag[{}] offset={} ttl={} MF={} -> {}",
            now,
            i,
            view.frag_offset(),
            view.ttl(),
            view.more_fragments(),
            if out.is_empty() { "buffered".to_string() } else { format!("FLUSH {} fragments:", out.len()) }
        );
        for flushed in &out {
            let v = Ipv4Packet::new_unchecked(&flushed[..]);
            let _ = writeln!(body, "        forwarded offset={} ttl={}", v.frag_offset(), v.ttl());
        }
        now += Duration::from_millis(30);
    }
    body.push_str(
        "\npaper (Fig. 3): fragments are buffered until the last arrives, then\nforwarded individually (no reassembly) with every TTL rewritten to the\nfirst fragment's TTL.\n",
    );
    ExperimentReport { id: "fig3", title: "Fig. 3 fragment handling", body }
}

/// Fig. 4: trigger-sequence exploration.
pub fn fig4() -> ExperimentReport {
    let mut lab = lab();
    let max_len = env_usize("TSPU_SEQ_LEN", 3);
    let verdicts = sequences::explore(&mut lab, max_len, "ER-Telecom");
    let summary = sequences::summarize(&verdicts);
    let mut body = String::new();
    let _ = writeln!(
        body,
        "explored {} sequences (length <= {max_len}): {} arm SNI-I, {} green (evade SNI-I, trip SNI-IV), {} inert",
        summary.total, summary.sni1_valid, summary.green, summary.inert
    );
    body.push_str("\nsequence        SNI-I-only domain   SNI-I+IV domain\n");
    for v in &verdicts {
        let _ = writeln!(
            body,
            "{:<16}{:<20}{:?}",
            v.notation,
            format!("{:?}", v.sni1_behavior),
            v.sni4_behavior
        );
    }
    body.push_str(
        "\npaper (Fig. 4): remote-first sequences never trigger; local-first with a\nlater remote SYN are green (SNI-I evaded, SNI-IV armed).\n",
    );
    ExperimentReport { id: "fig4", title: "Fig. 4 TCP trigger sequences", body }
}

/// Fig. 5: a worked SYN-SENT timeout inference.
pub fn fig5() -> ExperimentReport {
    let mut lab = lab();
    let rows = timeouts::table2_state_rows();
    let mut body = String::from(
        "protocol: play sequence, SLEEP T, finish sequence, send SNI-II trigger,\nobserve block/pass; binary-search the flip (Fig. 5's procedure).\n\n",
    );
    let measured = timeouts::measure_table2_row(&mut lab, &rows[0], 61_000);
    let _ = writeln!(
        body,
        "SYN-SENT flip search over Remote.SYN; SLEEP; Local.SYN; Remote.SA; trigger\n  measured flip: {:?} s (paper: 60 s)",
        measured
    );
    ExperimentReport { id: "fig5", title: "Fig. 5 timeout-inference protocol", body }
}

/// Table 1: trigger reliability per vantage and mechanism.
pub fn table1() -> ExperimentReport {
    let mut lab = lab();
    let trials = env_usize("TSPU_TRIALS", 20_000) as u32;
    let mut body = format!("{trials} trials per cell (paper: 20,000). Failure %.\n\n");
    body.push_str("vantage      mechanism   measured%   paper%\n");
    for vantage in ["Rostelecom", "ER-Telecom", "OBIT"] {
        let paper = paper_table1::OBSERVED
            .iter()
            .find(|(name, _)| *name == vantage)
            .map(|(_, v)| *v)
            .unwrap();
        for (i, mechanism) in Mechanism::ALL.iter().enumerate() {
            let stats = run_cell(&mut lab, vantage, *mechanism, trials);
            let paper_value = paper[i];
            let _ = writeln!(
                body,
                "{:<13}{:<12}{:<12.4}{}",
                vantage,
                mechanism.label(),
                stats.percent(),
                if paper_value.is_nan() { "N/A".to_string() } else { format!("{paper_value:.4}") }
            );
        }
    }
    body.push_str(
        "\npaper (§5.2.1): ER-Telecom (single device) fails visibly more than\nRostelecom/OBIT, whose two on-path devices must both fail.\n",
    );
    ExperimentReport { id: "table1", title: "Table 1 TSPU failure rates", body }
}

/// Table 2: state timeouts and block residuals.
pub fn table2() -> ExperimentReport {
    let mut lab = lab();
    let mut body = String::from("state / verdict   measured (s)   paper (s)\n");
    for (i, row) in timeouts::table2_state_rows().iter().enumerate() {
        let measured = timeouts::measure_table2_row(&mut lab, row, 62_000 + (i as u16) * 700);
        let _ = writeln!(
            body,
            "{:<18}{:<15}{}",
            row.label,
            measured.map(|v| v.to_string()).unwrap_or_else(|| "none".into()),
            row.paper_timeout
        );
    }
    let paper_residuals = [("SNI-I", 75), ("SNI-II", 420), ("SNI-IV", 40), ("QUIC", 420)];
    for (name, measured) in timeouts::measure_block_residuals(&mut lab, 7_000) {
        let paper = paper_residuals.iter().find(|(n, _)| *n == name).unwrap().1;
        let _ = writeln!(
            body,
            "{:<18}{:<15}{}",
            name,
            measured.map(|v| v.to_string()).unwrap_or_else(|| "none".into()),
            paper
        );
    }
    ExperimentReport { id: "table2", title: "Table 2 state timeouts & residuals", body }
}

/// Table 8: per-sequence timeout estimates.
pub fn table8() -> ExperimentReport {
    let mut lab = lab();
    // Paper's values, in the order of timeouts::table8_sequences().
    let paper: [(u64, &str); 17] = [
        (180, "DROP"), (30, "PASS"), (30, "PASS"), (180, "DROP"), (480, "PASS"),
        (180, "PASS"), (480, "PASS"), (480, "PASS"), (480, "PASS"), (420, "DROP"),
        (180, "PASS"), (480, "PASS"), (480, "PASS"), (180, "PASS"), (480, "PASS"),
        (480, "PASS"), (480, "DROP"),
    ];
    let mut body = String::from("sequence (+trigger)     measured(s)  action   paper(s)  paper-action\n");
    for (i, seq) in timeouts::table8_sequences().iter().enumerate() {
        let row = timeouts::measure_sequence(&mut lab, seq, 8_000 + (i as u16) * 600);
        let (paper_timeout, paper_action) = paper[i];
        let _ = writeln!(
            body,
            "{:<24}{:<13}{:<9}{:<10}{}",
            format!("{};Lt", row.notation.replace('∅', "")).trim_start_matches(';'),
            row.timeout_secs.map(|v| v.to_string()).unwrap_or_else(|| "none".into()),
            format!("{:?}", row.action).to_uppercase(),
            paper_timeout,
            paper_action
        );
    }
    body.push_str(
        "\nknown deviations (see EXPERIMENTS.md): the paper's Table 8 estimates 30 s\nfor remote-SYN flows where its own Table 2 measures 60 s — we encode 60 s;\nrows mixing Rs with Lsa measure the ESTABLISHED timeout here.\n",
    );
    ExperimentReport { id: "table8", title: "Table 8 sequence timeout estimates", body }
}

/// Fig. 13: ClientHello byte-sensitivity map.
pub fn fig13() -> ExperimentReport {
    let policy = chfuzz::fuzz_policy();
    let map = chfuzz::sensitivity_map(&policy, "meduza.io");
    let mut region_stats: std::collections::BTreeMap<&str, (usize, usize)> = Default::default();
    for (offset, sensitivity) in map.sensitivity.iter().enumerate() {
        let entry = region_stats.entry(map.region(offset)).or_default();
        entry.1 += 1;
        if *sensitivity == chfuzz::ByteSensitivity::Sensitive {
            entry.0 += 1;
        }
    }
    let mut body = format!(
        "fuzzed a {}-byte triggering ClientHello, one byte at a time:\n\nregion                 sensitive/total\n",
        map.record.len()
    );
    for (region, (sensitive, total)) in &region_stats {
        let _ = writeln!(body, "{region:<23}{sensitive}/{total}");
    }
    body.push_str(
        "\npaper (Fig. 13): type/length fields and the SNI itself are inspected;\nrandom, session id, ciphersuite values and other extension contents are\nignored — the TSPU parses the ClientHello to locate the SNI.\n",
    );
    ExperimentReport { id: "fig13", title: "Fig. 13 ClientHello inspection map", body }
}

/// Fig. 14: minimal QUIC fingerprint.
pub fn fig14() -> ExperimentReport {
    let policy = quicfp::quicfp_policy();
    let findings = quicfp::search(&policy);
    let mut body = format!(
        "minimum payload length: {} (paper: 1001)\nother ports trigger: {} (paper: no)\nrequired byte offsets: {:?} (paper: version bytes 1-4)\nfiller bytes matter: {} (paper: no)\n",
        findings.min_len, findings.other_ports_trigger, findings.required_offsets, findings.filler_matters
    );
    for (version, expect) in [
        (tspu_wire::quic::QuicVersion::V1, true),
        (tspu_wire::quic::QuicVersion::Draft29, false),
        (tspu_wire::quic::QuicVersion::QuicPing, false),
    ] {
        let dropped = quicfp::filter_drops(&policy, 443, &tspu_wire::quic::initial_payload(version, 1200));
        let _ = writeln!(
            body,
            "version {version:?}: {} (paper: {})",
            if dropped { "blocked" } else { "passes" },
            if expect { "blocked" } else { "passes" }
        );
    }
    ExperimentReport { id: "fig14", title: "Fig. 14 QUIC fingerprint", body }
}

/// Sanity hook used by integration tests: behaviors classified correctly
/// end to end.
pub fn behavior_sanity() -> bool {
    let mut lab = lab();
    let vantage = lab.vantage("ER-Telecom");
    let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port: 36_000 };
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    classify_behavior(
        &mut lab.net,
        local,
        remote,
        &handshake_prefix(),
        ClientHelloBuilder::new("meduza.io").build(),
    ) == tspu_measure::behaviors::ObservedBehavior::RstAck
}
