//! # tspu-bench
//!
//! The regeneration harness: one function per table and figure of the
//! paper's evaluation, each returning a printable report comparing paper
//! values with what the reproduction measures. The `experiments` bench
//! target (`cargo bench -p tspu-bench --bench experiments`) runs them all;
//! the `perf` target holds the criterion performance/ablation benches.
//!
//! Scaling knobs (environment variables):
//!
//! | var | default | effect |
//! |---|---|---|
//! | `TSPU_TRIALS` | 20000 | Table 1 trials per cell (the paper uses 20,000) |
//! | `TSPU_SCALE` | 0.004 | RuNet endpoint scale (1.0 = the paper's 4 M) |
//! | `TSPU_DOMAIN_LIMIT` | 25000 | domains tested per list in §6 (covers both full lists) |
//! | `TSPU_SEQ_LEN` | 3 | Fig. 4 sequence length bound (the paper uses 3) |
//! | `TSPU_ONLY` | — | comma-separated experiment ids to run |

pub mod experiments;

pub use experiments::{run_all, ExperimentReport};

/// Reads a numeric environment knob.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads an integer environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}
