//! Observability overhead measurement: the device packet path and the
//! simulator event loop, timed under whichever `obs` mode this binary was
//! compiled with. The bench ids carry the mode (`obs/device_hop_enabled`
//! vs `obs/device_hop_disabled`), so running the binary twice — default
//! features, then `--no-default-features` — into the same `BENCH_JSON`
//! file yields the before/after pair `bench_smoke.sh` turns into
//! `obs/overhead_device_hop`.
//!
//! Measured by hand (steady-state loop over a pre-built packet) rather
//! than through a Criterion group, because the quantity of interest is a
//! *difference* of two builds: both sides must run the identical loop.

use std::net::Ipv4Addr;
use std::time::Duration;

use tspu_core::{Policy, PolicyHandle, TspuDevice};
use tspu_netsim::{Direction, Middlebox, Network, Route, Time};
use tspu_stack::craft::TcpPacketSpec;
use tspu_wire::tcp::TcpFlags;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// ns/packet through the device's non-triggering data-packet hot path —
/// the loop the zero-alloc test freezes and the 5% overhead budget
/// covers. One `packets_seen` increment and one disabled-tracer check per
/// packet in the instrumented build; pure no-ops in the disabled build.
fn device_hop_ns(iters: u64) -> f64 {
    let mut dev = TspuDevice::reliable("bench", PolicyHandle::new(Policy::example()));
    let data = TcpPacketSpec::new(CLIENT, 40000, SERVER, 443, TcpFlags::PSH_ACK)
        .payload(vec![0xab; 1000])
        .build();
    let mut buf = data;
    let mut t = 0u64;
    for _ in 0..10_000 {
        t += 1;
        criterion::black_box(dev.process(Time::from_micros(t), Direction::LocalToRemote, &mut buf));
    }
    // Best-of-batches: the minimum batch time is the least-noise estimate
    // of the steady-state cost, and the overhead number BENCH_pr4.json
    // reports is a *difference* of two such estimates — scheduler noise
    // on either side would otherwise dwarf a few ns of real delta.
    const BATCHES: u64 = 10;
    let per_batch = (iters / BATCHES).max(1);
    let mut best_ns_per_iter = f64::INFINITY;
    for _ in 0..BATCHES {
        let start = std::time::Instant::now();
        for _ in 0..per_batch {
            t += 1;
            criterion::black_box(dev.process(
                Time::from_micros(t),
                Direction::LocalToRemote,
                &mut buf,
            ));
        }
        let ns = start.elapsed().as_nanos() as f64 / per_batch as f64;
        best_ns_per_iter = best_ns_per_iter.min(ns);
    }
    best_ns_per_iter
}

/// ns/event through the simulator loop (hop spans + queue-depth histogram
/// live here), SYN round trips over a 10-hop route with a device on it.
fn netsim_event_ns(flows: u64) -> f64 {
    let mut net = Network::new(Duration::from_micros(100));
    let a = net.add_host(CLIENT);
    let s = net.add_host(SERVER);
    let policy = PolicyHandle::new(Policy::example());
    let dev = net.add_middlebox(Box::new(TspuDevice::reliable("bench-obs", policy)));
    let hops: Vec<Ipv4Addr> = (0..10u32).map(|i| Ipv4Addr::from(0x0ab0_0000 + i)).collect();
    let mut route = Route::through(&hops);
    route.steps[8].devices.push((dev, Direction::LocalToRemote));
    net.set_route_symmetric(a, s, route);
    const BATCHES: u64 = 5;
    let per_batch = (flows / BATCHES).max(1);
    let mut best_ns_per_event = f64::INFINITY;
    let mut n = 0u64;
    for _ in 0..BATCHES {
        let start = std::time::Instant::now();
        let mut events = 0u64;
        for _ in 0..per_batch {
            n += 1;
            let port = 1024 + (n % 60_000) as u16;
            let syn = TcpPacketSpec::new(CLIENT, port, SERVER, 443, TcpFlags::SYN).build();
            net.send_from(a, syn);
            net.run_until_idle();
            criterion::black_box(net.take_inbox(s).len());
            events += 28; // 14 hops each way: fixed by the route, counted
                          // manually so both obs modes share one formula
                          // (events_processed reads 0 when obs is off).
        }
        let ns = start.elapsed().as_nanos() as f64 / events.max(1) as f64;
        best_ns_per_event = best_ns_per_event.min(ns);
    }
    best_ns_per_event
}

fn main() {
    let mode = if tspu_obs::ENABLED { "enabled" } else { "disabled" };
    let hop_iters: u64 = if quick() { 2_000_000 } else { 20_000_000 };
    let flows: u64 = if quick() { 2_000 } else { 20_000 };

    let hop_ns = device_hop_ns(hop_iters);
    criterion::report_custom(&format!("obs/device_hop_{mode}"), hop_ns, hop_iters);

    let event_ns = netsim_event_ns(flows);
    criterion::report_custom(&format!("obs/netsim_event_{mode}"), event_ns, flows * 28);
}
