//! Criterion performance and ablation benches: throughput of the TSPU
//! device's hot paths, plus the design-choice ablations DESIGN.md calls
//! out (parse-vs-scan SNI extraction, forward-without-reassembly vs full
//! reassembly, role-ambiguity tracking).

use std::net::Ipv4Addr;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use tspu_core::frag_cache::{FragCache, FragConfig};
use tspu_core::{DomainSet, Hardening, Policy, PolicyHandle, TokenBucket, TspuDevice};
use tspu_netsim::{Direction, Middlebox, Network, Route, Time};
use tspu_stack::craft::TcpPacketSpec;
use tspu_wire::frag;
use tspu_wire::ipv4::{Ipv4Repr, Protocol};
use tspu_wire::tcp::TcpFlags;
use tspu_wire::tls::{extract_sni, ClientHelloBuilder, SniOutcome};

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

fn device() -> TspuDevice {
    TspuDevice::reliable("bench", PolicyHandle::new(Policy::example()))
}

/// Packets/second through the device for plain (non-triggering) traffic —
/// the conntrack hot path.
fn conntrack_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("device");
    let data = TcpPacketSpec::new(CLIENT, 40000, SERVER, 443, TcpFlags::PSH_ACK)
        .payload(vec![0xab; 1000])
        .build();
    group.throughput(Throughput::Elements(1));
    group.bench_function("conntrack_data_packet", |b| {
        let mut dev = device();
        let mut t = 0u64;
        let mut buf = data.clone();
        b.iter(|| {
            t += 1;
            dev.process(Time::from_micros(t), Direction::LocalToRemote, &mut buf)
        });
    });

    // Triggering ClientHello evaluation (parse + policy lookup + verdict).
    let ch = TcpPacketSpec::new(CLIENT, 40001, SERVER, 443, TcpFlags::PSH_ACK)
        .payload(ClientHelloBuilder::new("twitter.com").build())
        .build();
    group.bench_function("sni_trigger_evaluation", |b| {
        let mut dev = device();
        let mut t = 0u64;
        let mut buf = ch.clone();
        b.iter(|| {
            t += 1;
            dev.process(Time::from_micros(t), Direction::LocalToRemote, &mut buf)
        });
    });
    group.finish();
}

/// Policy blocklist matching at registry-representative list sizes: the
/// per-ClientHello lookup the SNI engine performs against every list.
fn policy_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy");
    group.throughput(Throughput::Elements(1));
    for n in [1_000usize, 100_000] {
        let mut set = DomainSet::new();
        for i in 0..n {
            set.insert(format!("domain-{i}.example{}.ru", i % 7));
        }
        // A subdomain of a listed name: walks suffixes until the hit.
        let hit = format!("Www.CDN.domain-{}.example3.ru", (n / 2) | 3);
        group.bench_function(format!("match_hit_{n}"), |b| {
            b.iter(|| set.matches(black_box(&hit)));
        });
        // A deep unlisted host: the worst case walks every suffix level.
        let miss = "edge-17.pop.msk.cdn.static.unlisted-video-host.example.com";
        group.bench_function(format!("match_miss_{n}"), |b| {
            b.iter(|| set.matches(black_box(miss)));
        });
    }
    group.finish();
}

/// Connection-table churn: every packet opens a distinct flow, so the
/// table only grows and the garbage collector is exercised on the packet
/// path. Reports the amortized cost plus the per-packet tail (the
/// full-table sweep shows up as a latency spike; a bounded incremental
/// sweep must not).
fn conntrack_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("conntrack");
    group.throughput(Throughput::Elements(1));
    group.bench_function("gc_churn_distinct_flows", |b| {
        let mut dev = device();
        let mut n: u64 = 0;
        b.iter(|| {
            n += 1;
            // Distinct src addr+port per packet: up to ~2^30 unique flows.
            let src = Ipv4Addr::from(0x0a00_0000 | (n as u32 >> 14));
            let port = 1024 + (n % 50_000) as u16;
            let mut syn = TcpPacketSpec::new(src, port, SERVER, 443, TcpFlags::SYN).build();
            dev.process(Time::from_micros(n * 3), Direction::LocalToRemote, &mut syn)
        });
    });
    group.finish();

    // Tail latency of the same churn workload, measured per packet: the
    // statistic the median-reporting harness cannot show. Run twice —
    // from an empty table (tails include hash-table growth rehashes) and
    // from a provisioned one (the remaining tail is the GC bound itself).
    let total: u64 = if std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()) {
        80_000
    } else {
        300_000
    };
    for (suffix, mut dev) in [
        ("", device()),
        ("_provisioned", device().with_flow_capacity(total as usize + 1)),
    ] {
        let mut samples_ns = Vec::with_capacity(total as usize);
        for n in 1..=total {
            let src = Ipv4Addr::from(0x0a00_0000 | (n as u32 >> 14));
            let port = 1024 + (n % 50_000) as u16;
            let mut syn = TcpPacketSpec::new(src, port, SERVER, 443, TcpFlags::SYN).build();
            let start = std::time::Instant::now();
            criterion::black_box(dev.process(Time::from_micros(n * 3), Direction::LocalToRemote, &mut syn));
            samples_ns.push(start.elapsed().as_nanos() as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pick = |q: f64| samples_ns[((samples_ns.len() - 1) as f64 * q) as usize];
        criterion::report_custom(&format!("conntrack/gc_churn{suffix}_p99"), pick(0.99), total);
        criterion::report_custom(&format!("conntrack/gc_churn{suffix}_p999"), pick(0.999), total);
        criterion::report_custom(&format!("conntrack/gc_churn{suffix}_max"), samples_ns[samples_ns.len() - 1], total);
    }
}

/// Ablation: the resource bill of the §8 counter-circumvention patches —
/// stock 2022 device vs fully hardened, on segmented ClientHello traffic
/// (the workload hardening exists to catch).
fn hardening_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardening");
    let ch = ClientHelloBuilder::new("twitter.com").build();
    let segments: Vec<Vec<u8>> = ch
        .chunks(48)
        .map(|chunk| {
            TcpPacketSpec::new(CLIENT, 40100, SERVER, 443, TcpFlags::PSH_ACK)
                .payload(chunk.to_vec())
                .build()
        })
        .collect();
    for (name, hardening) in [("stock_2022", Hardening::none()), ("fully_hardened", Hardening::full())] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    TspuDevice::reliable("ablate", PolicyHandle::new(Policy::example()))
                        .with_hardening(hardening)
                },
                |mut dev| {
                    for segment in &segments {
                        dev.process_owned(Time::ZERO, Direction::LocalToRemote, segment.clone());
                    }
                    dev.stats().triggers_sni1
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Ablation: parsing the ClientHello to locate the SNI vs naive substring
/// scanning over the whole packet — the design §5.2/Fig. 13 establishes.
fn sni_parse_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("sni_extraction");
    let record = ClientHelloBuilder::new("some-blocked-domain-name.ru").padding(900).build();
    group.throughput(Throughput::Bytes(record.len() as u64));
    group.bench_function("parse_clienthello", |b| {
        b.iter(|| {
            let outcome = extract_sni(&record);
            assert!(matches!(outcome, SniOutcome::Sni(_)));
        });
    });
    // A naive DPI that substring-searches a 10k-entry blocklist sample
    // over the raw bytes (what the TSPU demonstrably does NOT do).
    let blocklist: Vec<String> = (0..10_000).map(|i| format!("domain-{i}.example.ru")).collect();
    group.bench_function("naive_substring_scan_10k", |b| {
        b.iter(|| {
            blocklist
                .iter()
                .filter(|d| {
                    record
                        .windows(d.len())
                        .any(|w| w.eq_ignore_ascii_case(d.as_bytes()))
                })
                .count()
        });
    });
    group.finish();
}

/// Fragment cache: buffering+flush throughput, and the ablation against a
/// conventional-DPI configuration (Linux-like 64-fragment limit).
fn frag_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("frag_cache");
    let payload = vec![0x55u8; 1480];
    let mut repr = Ipv4Repr::new(CLIENT, SERVER, Protocol::Udp, payload.len());
    repr.ident = 9;
    let datagram = repr.build(&payload);
    let train = frag::fragment(&datagram, 256).unwrap();
    group.throughput(Throughput::Elements(train.len() as u64));
    group.bench_function("tspu_buffer_and_flush", |b| {
        b.iter_batched(
            FragCache::default,
            |mut cache| {
                let mut out = Vec::new();
                for piece in &train {
                    out = cache.offer(Time::ZERO, piece);
                }
                assert_eq!(out.len(), train.len());
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("conventional_reassembly", |b| {
        // Full reassembly (what GFW-class DPIs do): strictly more work
        // and memory than the TSPU's forward-without-reassembly.
        b.iter(|| {
            let whole = frag::reassemble(&train).unwrap();
            assert_eq!(whole.len(), datagram.len());
        });
    });
    group.bench_function("tspu_45_limit_discard", |b| {
        let too_many = frag::fragment_into(&datagram, 46).unwrap();
        b.iter_batched(
            || FragCache::new(FragConfig::default()),
            |mut cache| {
                for piece in &too_many {
                    let out = cache.offer(Time::ZERO, piece);
                    assert!(out.is_empty());
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// The SNI-III policer at both historical rates.
fn policer(c: &mut Criterion) {
    let mut group = c.benchmark_group("policer");
    for (name, rate, burst) in [("hard_2022_650Bps", 650u64, 1600u64), ("twitter_2021_130kbps", 16_250, 16_000)] {
        group.bench_function(name, |b| {
            let mut bucket = TokenBucket::new(rate, burst, Time::ZERO);
            let mut t = 0u64;
            b.iter(|| {
                t += 100;
                bucket.admit(Time::from_micros(t), 1460)
            });
        });
    }
    group.finish();
}

/// Simulator event throughput: one flow crossing a 10-hop path with a
/// TSPU attached — the unit of work the Fig. 9 country scan multiplies by
/// millions.
fn netsim_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.bench_function("10hop_roundtrip_with_tspu", |b| {
        let mut net = Network::new(Duration::from_micros(100));
        let a = net.add_host(CLIENT);
        let s = net.add_host(SERVER);
        let policy = PolicyHandle::new(Policy::example());
        let dev = net.add_middlebox(Box::new(TspuDevice::reliable("bench", policy)));
        let hops: Vec<Ipv4Addr> = (0..10u32).map(|i| Ipv4Addr::from(0x0a80_0000 + i)).collect();
        let mut route = Route::through(&hops);
        route.steps[8].devices.push((dev, Direction::LocalToRemote));
        net.set_route_symmetric(a, s, route);
        let mut port = 1000u16;
        b.iter(|| {
            port = port.wrapping_add(1).max(1000);
            let syn = TcpPacketSpec::new(CLIENT, port, SERVER, 443, TcpFlags::SYN).build();
            net.send_from(a, syn);
            net.run_until_idle();
            net.take_inbox(s).len()
        });
    });

    // Pure forwarding cost of a large data packet across the same path:
    // no middlebox mutates it, so this measures the per-hop copy bill.
    group.bench_function("10hop_data_forwarding_1400B", |b| {
        let mut net = Network::new(Duration::from_micros(100));
        let a = net.add_host(CLIENT);
        let s = net.add_host(SERVER);
        let policy = PolicyHandle::new(Policy::example());
        let dev = net.add_middlebox(Box::new(TspuDevice::reliable("bench-fwd", policy)));
        let hops: Vec<Ipv4Addr> = (0..10u32).map(|i| Ipv4Addr::from(0x0a90_0000 + i)).collect();
        let mut route = Route::through(&hops);
        route.steps[8].devices.push((dev, Direction::LocalToRemote));
        net.set_route_symmetric(a, s, route);
        let data = TcpPacketSpec::new(CLIENT, 41000, SERVER, 9090, TcpFlags::PSH_ACK)
            .payload(vec![0x5a; 1400])
            .build();
        b.iter(|| {
            net.send_from(a, data.clone());
            net.run_until_idle();
            net.take_inbox(s).len()
        });
    });
    group.finish();
}

/// Raw simulator event throughput: drain a large batch of flows through
/// the event loop and charge wall time to `events_processed`. Reported as
/// ns/event under `netsim/events_per_sec` (events/sec = 1e9 / ns_per_iter).
fn netsim_event_rate(_c: &mut Criterion) {
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let flows: u64 = if quick { 2_000 } else { 40_000 };
    let mut net = Network::new(Duration::from_micros(100));
    let a = net.add_host(CLIENT);
    let s = net.add_host(SERVER);
    let policy = PolicyHandle::new(Policy::example());
    let dev = net.add_middlebox(Box::new(TspuDevice::reliable("bench-events", policy)));
    let hops: Vec<Ipv4Addr> = (0..10u32).map(|i| Ipv4Addr::from(0x0aa0_0000 + i)).collect();
    let mut route = Route::through(&hops);
    route.steps[8].devices.push((dev, Direction::LocalToRemote));
    net.set_route_symmetric(a, s, route);
    let start = std::time::Instant::now();
    for n in 0..flows {
        let port = 1024 + (n % 60_000) as u16;
        let syn = TcpPacketSpec::new(CLIENT, port, SERVER, 443, TcpFlags::SYN).build();
        net.send_from(a, syn);
        net.run_until_idle();
        black_box(net.take_inbox(s).len());
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let events = net.events_processed().max(1);
    criterion::report_custom("netsim/events_per_sec", elapsed / events as f64, events);
}

/// The tentpole's headline: the §6 registry campaign sharded by the scan
/// pool, single-thread vs 8 threads over the same `SweepSpec`. One whole
/// sweep is the unit of work, so these report through `report_custom`
/// (ns_per_iter = ns per domain scenario). Verdicts are asserted equal
/// across thread counts — the speedup must not cost determinism.
///
/// `SweepSpec::run` builds the warm lab image once and forks a private
/// lab per scenario, so `registry_100k_{1,N}thread` measure the forked
/// path; the same numbers are also recorded under the explicit
/// `registry_100k_forked_{1,N}thread` ids. `registry_100k_fresh_1thread`
/// keeps the old build-per-scenario loop alive as the reference the
/// fork is measured against (bench_smoke derives
/// `sweep/forked_vs_fresh_ratio` and asserts it ≥2.5×), and
/// `lab_fork_ns` prices one `LabImage::fork` on its own.
fn sweep_scale(_c: &mut Criterion) {
    use tspu_measure::domains::test_domain;
    use tspu_measure::sweep::{scenario_port, RunOpts, ScanPool, SweepSpec};
    use tspu_registry::Universe;
    use tspu_topology::VantageLab;

    // Always the full 100k scenarios, even under BENCH_QUICK: at ~30 µs
    // per scenario the whole sweep costs seconds, and the id promises the
    // registry scale.
    let domain_count: usize = 100_000;
    let universe = Universe::generate(2022);
    // The paper-scale domain list: the real registry/tranco names cycled
    // and uniqued with a synthetic tail up to 100k scenarios.
    let domains: Vec<String> = universe
        .registry_sample
        .iter()
        .chain(universe.tranco.iter())
        .map(|d| d.name.clone())
        .chain((0..domain_count).map(|i| format!("filler-{i}.example.ru")))
        .take(domain_count)
        .collect();
    let spec = SweepSpec::from_universe(&universe, domains);

    let timed = |threads: usize| {
        let pool = ScanPool::new(threads);
        let start = std::time::Instant::now();
        let verdicts = spec.run(&pool, &RunOpts::quick()).verdicts;
        (start.elapsed().as_nanos() as f64, verdicts)
    };
    let (ns_1, verdicts_1) = timed(1);
    let (ns_8, verdicts_8) = timed(8);
    assert_eq!(verdicts_1, verdicts_8, "sweep results must not depend on thread count");
    let n = spec.len().max(1) as u64;
    criterion::report_custom("sweep/registry_100k_1thread", ns_1 / n as f64, n);
    criterion::report_custom("sweep/registry_100k_Nthread", ns_8 / n as f64, n);
    criterion::report_custom("sweep/registry_100k_forked_1thread", ns_1 / n as f64, n);
    criterion::report_custom("sweep/registry_100k_forked_Nthread", ns_8 / n as f64, n);

    // The reference the fork replaced: one fresh builder().build() per
    // scenario, single-thread, same verdicts (asserted) — what
    // `registry_100k_1thread` measured before lab images existed.
    let pool = ScanPool::single_thread();
    let start = std::time::Instant::now();
    let fresh = pool.run(&spec.domains, &RunOpts::quick(), || (), |(), index, domain| {
        let mut lab = VantageLab::builder().policy(spec.policy.clone()).build();
        test_domain(&mut lab, domain, scenario_port(index))
    });
    let fresh_ns = start.elapsed().as_nanos() as f64;
    assert_eq!(fresh.results, verdicts_1, "forked sweep must match build-per-scenario sweep");
    criterion::report_custom("sweep/registry_100k_fresh_1thread", fresh_ns / n as f64, n);

    // One fork, priced alone: the warm image amortizes construction, so
    // this is the whole per-scenario setup bill.
    let image = VantageLab::builder().policy(spec.policy.clone()).image();
    let fork_iters = 20_000u64;
    let start = std::time::Instant::now();
    for i in 0..fork_iters {
        black_box(image.fork(i as usize));
    }
    criterion::report_custom(
        "sweep/lab_fork_ns",
        start.elapsed().as_nanos() as f64 / fork_iters as f64,
        fork_iters,
    );
}

/// Generated-topology scale records: graph build cost per AS (5000-AS
/// headline graph), forking that image, route flips through the interned
/// arena, tomography probe cost, and the 1k-domain registry sweep at
/// three graph sizes. Sweep and build records always run at the id's
/// promised scale; only iteration counts shrink under `BENCH_QUICK`.
fn topo_scale(_c: &mut Criterion) {
    use tspu_measure::sweep::{RunOpts, ScanPool, SweepSpec};
    use tspu_measure::{LocalizeSpec, TomographyConfig};
    use tspu_registry::Universe;
    use tspu_topology::{policy_from_universe, GenParams, TopologySpec, VantageLab};

    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let universe = Universe::generate(2022);
    let policy = policy_from_universe(&universe, false, true);

    // Building the 5000-AS graph (hosts, interned routes, devices),
    // amortized per AS.
    let params_5k = GenParams::new(5000, 5000);
    let start = std::time::Instant::now();
    let image = VantageLab::builder()
        .policy(policy.clone())
        .topology(TopologySpec::Generated(params_5k))
        .image();
    criterion::report_custom("topo/gen_ns_per_as", start.elapsed().as_nanos() as f64 / 5_000.0, 5_000);

    // Forking the 5000-AS image — the per-scenario bill a generated
    // sweep or tomography cell pays.
    let forks = if quick { 8 } else { 64 };
    let start = std::time::Instant::now();
    for i in 0..forks {
        black_box(image.fork(i));
    }
    criterion::report_custom(
        "topo/fork_ns_5000as",
        start.elapsed().as_nanos() as f64 / forks as f64,
        forks as u64,
    );

    // Route flips through the interned arena: a dense schedule (1 ms
    // apart) armed once, then drained by the engine.
    let flips = if quick { 200 } else { 2_000 };
    let churny = GenParams::new(11, 200).churn(flips, Duration::from_millis(1));
    let mut lab = VantageLab::builder()
        .policy(policy.clone())
        .topology(TopologySpec::Generated(churny))
        .build();
    lab.arm_route_churn();
    let start = std::time::Instant::now();
    lab.net.run_for(Duration::from_millis(flips as u64 + 10));
    criterion::report_custom(
        "topo/route_flip_ns",
        start.elapsed().as_nanos() as f64 / flips as f64,
        flips as u64,
    );

    // Tomography: wall microseconds per end-to-end probe, churn warps
    // and the TTL cross-check included.
    let cells = if quick { 2 } else { 8 };
    let config = TomographyConfig::new(GenParams::new(7, 160)).cells(cells);
    let pool = ScanPool::new(8);
    let start = std::time::Instant::now();
    let run = LocalizeSpec::tomography(policy, config)
        .run(&pool, &RunOpts::quick())
        .tomography
        .expect("tomography run");
    let elapsed_us = start.elapsed().as_nanos() as f64 / 1000.0;
    assert!(run.named_fraction() >= 0.95, "tomography lost the ground truth");
    let probes: usize = run.cells.iter().map(|c| c.probes.len()).sum();
    criterion::report_custom("tomography/us_per_probe", elapsed_us / probes.max(1) as f64, probes as u64);

    // The 1k-domain registry sweep at three generated graph sizes: the
    // scan cost is a function of the domain list, not the graph.
    let domains: Vec<String> =
        universe.registry_sample.iter().take(1_000).map(|d| d.name.clone()).collect();
    for ases in [100usize, 1_000, 5_000] {
        let spec = SweepSpec::from_universe(&universe, domains.clone())
            .with_topology(TopologySpec::Generated(GenParams::new(ases as u64, ases)));
        let start = std::time::Instant::now();
        let verdicts = spec.run(&pool, &RunOpts::quick()).verdicts;
        let ns = start.elapsed().as_nanos() as f64;
        assert_eq!(verdicts.len(), 1_000, "{ases}-AS sweep dropped scenarios");
        criterion::report_custom(&format!("sweep/registry_1k_{ases}as"), ns / 1_000.0, 1_000);
    }
}

/// Registry churn: the incremental-update claim in numbers. Applying a
/// daily-sized delta to a 100k-domain compiled policy costs time
/// proportional to the delta; recompiling the blocklist from scratch
/// costs time proportional to the registry (bench_smoke derives the
/// ≥50× `churn/delta_vs_recompile_ratio` record from the pair). The
/// end-to-end record replays a slice of the 2022 escalation and reports
/// the TSPU's median blocking-convergence latency in virtual
/// milliseconds — the centralized half of the paper's update-lag
/// contrast.
fn churn_convergence(_c: &mut Criterion) {
    use tspu_core::PolicyDelta;
    use tspu_measure::{ChurnCampaign, ScanPool};
    use tspu_registry::Universe;

    let mut policy = Policy::permissive();
    policy.sni_rst = DomainSet::from_names((0..100_000).map(|i| format!("blocked-{i}.example.ru")));

    // 256 distinct daily-sized deltas (32 additions + a delisting),
    // applied to the live policy — the steady-state churn path.
    let delta_iters = 256u64;
    let deltas: Vec<PolicyDelta> = (0..delta_iters)
        .map(|k| PolicyDelta {
            add_rst: (0..32).map(|i| format!("fresh-{k}-{i}.example.net")).collect(),
            remove_rst: if k > 0 {
                vec![format!("fresh-{}-0.example.net", k - 1)]
            } else {
                Vec::new()
            },
            ..PolicyDelta::default()
        })
        .collect();
    let start = std::time::Instant::now();
    for delta in &deltas {
        policy.apply_delta(black_box(delta));
    }
    let delta_ns = start.elapsed().as_nanos() as f64 / delta_iters as f64;
    criterion::report_custom("churn/delta_apply_ns", delta_ns, delta_iters);

    // The alternative a delta replaces: recompiling the whole blocklist.
    let names: Vec<String> = policy.sni_rst.iter().map(str::to_string).collect();
    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let recompile_iters: u64 = if quick { 3 } else { 20 };
    let start = std::time::Instant::now();
    for _ in 0..recompile_iters {
        black_box(DomainSet::from_names(names.iter().cloned()));
    }
    let recompile_ns = start.elapsed().as_nanos() as f64 / recompile_iters as f64;
    criterion::report_custom("churn/policy_recompile_ns", recompile_ns, recompile_iters);

    // End-to-end: virtual-time convergence of a replayed escalation slice.
    let universe = Universe::generate(5);
    let mut campaign = ChurnCampaign::escalation_2022();
    campaign.churn.end_day = campaign.churn.start_day + 10;
    let report = campaign.run(&universe, &ScanPool::new(8));
    let cells = report.cells.len().max(1) as u64;
    criterion::report_custom(
        "churn/convergence_virtual_ms",
        report.median_convergence_us() as f64 / 1000.0,
        cells,
    );
}

/// Timer-wheel scheduling at population depth: steady-state push+pop with
/// tens of thousands of pending events, the regime the wheel's O(1)
/// buckets exist for (a binary heap pays O(log n) per op here).
fn wheel_schedule(_c: &mut Criterion) {
    use tspu_netsim::TimerWheel;

    let depth: u64 = 50_000;
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    // Spread the standing population over a few milliseconds so both the
    // near-future buckets and the overflow heap stay exercised.
    for i in 0..depth {
        wheel.push(Time::from_micros(1 + i % 8_192), i);
    }
    let iters: u64 = 2_000_000;
    let start = std::time::Instant::now();
    for _ in 0..iters {
        let (now, item) = wheel.pop().expect("standing population");
        // Reschedule relative to the popped time: keeps depth constant
        // and the timestamp stream monotone, like re-armed flow timers.
        wheel.push(now + Duration::from_micros(1 + (item & 4_095)), item);
        black_box(item);
    }
    criterion::report_custom(
        "netsim/wheel_schedule_ns",
        start.elapsed().as_nanos() as f64 / iters as f64,
        iters,
    );
}

/// The million-flow soak: population-scale load through one sharded-table
/// device. Reports the headline sustained packets/sec, wall latency
/// percentiles per scheduler event, and conntrack bytes per tracked flow.
/// Under BENCH_QUICK the population shrinks (like the gc_churn ids) but
/// the table stays provisioned for a million flows.
fn load_engine(_c: &mut Criterion) {
    use tspu_load::gen::LoadProfile;
    use tspu_load::soak::{build_lab, SoakConfig};

    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let flows: usize = if quick { 100_000 } else { 1_000_000 };
    let lab = build_lab(SoakConfig {
        profile: LoadProfile {
            flows,
            clients: 64,
            universe_domains: 100_000,
            span: Duration::from_secs(240),
            ..LoadProfile::default()
        },
        flow_capacity: 1_048_576,
        shards: Some(16),
        slice: Duration::from_millis(200),
    });
    let report = lab.run();
    assert_eq!(report.stats.flows_completed, flows as u64, "population did not drain");
    assert_eq!(report.stats.oracle_mismatches, 0, "enforcement wrong under load");
    assert!(report.gc_within_budget(), "conntrack GC over budget");

    let packets = report.device_packets;
    // Value is packets/sec (higher is better); bench_smoke asserts the
    // floor directly on the value.
    criterion::report_custom("load/sustained_pps_1m_flows", report.sustained_pps, packets);
    criterion::report_custom("load/p50_hop_ns_1m_flows", report.p50_event_ns as f64, report.events);
    criterion::report_custom("load/p99_hop_ns_1m_flows", report.p99_event_ns as f64, report.events);
    criterion::report_custom(
        "load/p999_hop_ns_1m_flows",
        report.p999_event_ns as f64,
        report.events,
    );
    criterion::report_custom(
        "load/bytes_per_flow",
        report.bytes_per_flow,
        report.peak_tracked_flows as u64,
    );
}

/// The three-country differential campaign (DESIGN.md §12), priced per
/// (profile × domain) cell: fork the profile's warm lab image, run the
/// TLS + HTTP + DNS volleys, classify. The value is *microseconds* per
/// cell (hence `_us_`). Oracle auditing is off here — the campaign prices
/// the probe path; `profiles/differential_3country_audited_us_per_cell`
/// prices the same cells with capture + per-profile oracle replay on, so
/// the audit overhead stays visible as its own record.
fn profiles_differential(_c: &mut Criterion) {
    use tspu_measure::{DifferentialCampaign, RunOpts, ScanPool};
    use tspu_registry::Universe;
    use tspu_topology::policy_from_universe;

    let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let universe = Universe::generate(3);
    let policy = policy_from_universe(&universe, false, true);
    let mut domains: Vec<String> = ["meduza.io", "twitter.com", "nordvpn.com", "rust-lang.org"]
        .into_iter()
        .map(String::from)
        .collect();
    let filler = if quick { 8 } else { 60 };
    domains.extend((0..filler).map(|i| format!("cell-{i}.example")));

    let mut campaign = DifferentialCampaign::three_country(policy, domains);
    campaign.check_oracle = false;
    let cells = campaign.len().max(1) as u64;
    let pool = ScanPool::new(8);

    let start = std::time::Instant::now();
    let (matrix, _) = campaign.run(&pool, &RunOpts::quick());
    let plain_us = start.elapsed().as_nanos() as f64 / 1000.0 / cells as f64;
    assert_eq!(matrix.cells.len(), cells as usize, "campaign dropped cells");
    criterion::report_custom("profiles/differential_3country_us_per_cell", plain_us, cells);

    campaign.check_oracle = true;
    let start = std::time::Instant::now();
    let (matrix, _) = campaign.run(&pool, &RunOpts::quick());
    let audited_us = start.elapsed().as_nanos() as f64 / 1000.0 / cells as f64;
    assert!(matrix.oracle_clean(), "{:?}", matrix.oracle_violations());
    criterion::report_custom(
        "profiles/differential_3country_audited_us_per_cell",
        audited_us,
        cells,
    );
}

criterion_group!(
    benches,
    conntrack_throughput,
    policy_matching,
    conntrack_gc,
    hardening_cost,
    sni_parse_vs_scan,
    frag_cache,
    policer,
    netsim_scale,
    netsim_event_rate,
    wheel_schedule,
    sweep_scale,
    topo_scale,
    churn_convergence,
    load_engine,
    profiles_differential
);
criterion_main!(benches);
