//! The regeneration harness: `cargo bench -p tspu-bench --bench experiments`
//! re-runs every table and figure of the paper and prints paper-vs-measured.
//!
//! Not a criterion bench (harness = false): the artifact is the output,
//! not a latency distribution. Scaling knobs are environment variables —
//! see `tspu-bench`'s crate docs.

fn main() {
    // `cargo bench` passes --bench; ignore arguments.
    let started = std::time::Instant::now();
    println!("TSPU reproduction — experiment regeneration");
    println!("(paper: 'TSPU: Russia's Decentralized Censorship System', IMC 2022)");
    for report in tspu_bench::run_all() {
        println!("{}", report.render());
    }
    println!("\nall experiments regenerated in {:.1?}", started.elapsed());
}
