//! # tspu-circumvent
//!
//! The circumvention strategies of paper §8 and a harness that evaluates
//! each against every blocking mechanism and both deployment shapes
//! (symmetric-only, and symmetric + upstream-only).
//!
//! Server-side strategies need no client modification:
//! * **small advertised window** — the SYN/ACK announces a tiny window, so
//!   an unmodified client's stack segments the ClientHello (brdgrd-style);
//! * **split handshake** — the server answers a SYN with a bare SYN,
//!   tricking the TSPU's role inference (a Fig. 4 "green" sequence);
//! * **combined** — both at once;
//! * **delayed response** — the server sits out the TSPU's short SYN-SENT
//!   timeout (60 s) before answering, so the tracked flow expires and the
//!   connection looks server-initiated.
//!
//! Client-side strategies modify the client stack:
//! * **TCP segmentation** of the ClientHello;
//! * **IP fragmentation** of the ClientHello packet;
//! * **padding extension** — inflates the ClientHello past one MSS;
//! * **record prepend** — an innocuous TLS record before the ClientHello;
//! * **TTL-limited decoys** — found *mitigated* by the paper (§8), and
//!   mitigated here: the inspection window covers later packets;
//! * **QUIC version change** — draft-29 / quicping escape the version-1
//!   fingerprint.

use std::time::Duration;

use tspu_netsim::HostId;
use tspu_registry::Universe;
use tspu_stack::client::SendShaping;
use tspu_stack::server::ReassemblingApp;
use tspu_stack::{
    ClientOutcome, PortBehavior, QuicClient, ServerApp, ServerPort, TcpClient, TcpClientConfig,
};
use tspu_topology::VantageLab;
use tspu_wire::quic::QuicVersion;
use tspu_wire::tls::{change_cipher_spec_record, ClientHelloBuilder};

/// A circumvention strategy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// No strategy: the baseline that must fail for blocked domains.
    None,
    ServerSmallWindow(u16),
    ServerSplitHandshake,
    ServerCombined(u16),
    ServerDelayedResponse(Duration),
    ClientSegmentation(usize),
    ClientIpFragmentation(usize),
    ClientPadding(usize),
    ClientPrependRecord,
    ClientTtlDecoy(u8),
    QuicVersion(QuicVersion),
}

impl Strategy {
    /// Human-readable name.
    pub fn name(&self) -> String {
        match self {
            Strategy::None => "baseline".into(),
            Strategy::ServerSmallWindow(w) => format!("server: small window ({w})"),
            Strategy::ServerSplitHandshake => "server: split handshake".into(),
            Strategy::ServerCombined(w) => format!("server: split + window ({w})"),
            Strategy::ServerDelayedResponse(d) => format!("server: delay {}s", d.as_secs()),
            Strategy::ClientSegmentation(n) => format!("client: TCP segmentation ({n})"),
            Strategy::ClientIpFragmentation(n) => format!("client: IP fragmentation ({n})"),
            Strategy::ClientPadding(n) => format!("client: padding extension ({n})"),
            Strategy::ClientPrependRecord => "client: prepend TLS record".into(),
            Strategy::ClientTtlDecoy(ttl) => format!("client: TTL-{ttl} decoys [mitigated]"),
            Strategy::QuicVersion(v) => format!("client: QUIC version {v:?}"),
        }
    }

    /// True for strategies deployable without touching the client.
    pub fn server_side(&self) -> bool {
        matches!(
            self,
            Strategy::ServerSmallWindow(_)
                | Strategy::ServerSplitHandshake
                | Strategy::ServerCombined(_)
                | Strategy::ServerDelayedResponse(_)
        )
    }
}

/// The censored-resource classes a strategy is evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// A domain blocked by SNI-I only.
    Sni1,
    /// An out-registry SNI-II domain.
    Sni2,
    /// A domain on both SNI-I and the SNI-IV backup list.
    Sni4,
    /// QUIC to an uncensored domain (the protocol itself is the target).
    Quic,
}

impl Target {
    /// All four targets.
    pub const ALL: [Target; 4] = [Target::Sni1, Target::Sni2, Target::Sni4, Target::Quic];

    /// The domain representing this class in the evaluation.
    pub fn domain(&self) -> &'static str {
        match self {
            Target::Sni1 => "meduza.io",
            Target::Sni2 => "play.google.com",
            Target::Sni4 => "twitter.com",
            Target::Quic => "example.org",
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Target::Sni1 => "SNI-I",
            Target::Sni2 => "SNI-II",
            Target::Sni4 => "SNI-IV",
            Target::Quic => "QUIC",
        }
    }
}

/// Size of the page the evaluation server returns.
const PAGE_BYTES: usize = 16_000;

/// The evaluation harness: one lab, fresh flows per trial.
pub struct CircumventionLab {
    pub lab: VantageLab,
    port: u16,
}

impl CircumventionLab {
    /// Builds the harness (QUIC filter on, throttling off: the post-
    /// March-4 policy under which §8 was written).
    pub fn new(universe: &Universe) -> CircumventionLab {
        CircumventionLab { lab: VantageLab::builder().universe(universe).table1().build(), port: 20_000 }
    }

    /// Builds the harness with every device upgraded to the given
    /// hardening level — the arms-race scenario §8 predicts.
    pub fn hardened(universe: &Universe, hardening: tspu_core::Hardening) -> CircumventionLab {
        let mut harness = CircumventionLab::new(universe);
        let handles: Vec<_> = harness
            .lab
            .vantages
            .iter()
            .flat_map(|v| std::iter::once(v.sym_device).chain(v.upstream_devices.iter().copied()))
            .collect();
        for handle in handles {
            harness.lab.net.with_middlebox_mut(handle, |dev| dev.set_hardening(hardening));
        }
        harness
    }

    fn next_port(&mut self) -> u16 {
        self.port = self.port.wrapping_add(1).max(20_000);
        self.port
    }

    /// Evaluates `strategy` against `target` from the named vantage.
    /// Returns true when the client obtained response data — circumvention
    /// succeeded.
    pub fn evaluate(&mut self, strategy: Strategy, target: Target, vantage: &str) -> bool {
        // Residual verdicts from previous trials must lapse.
        self.lab.net.run_for(Duration::from_secs(481));
        let port = self.next_port();
        let (v_host, v_addr) = {
            let v = self.lab.vantage(vantage);
            (v.host, v.addr)
        };
        let us_addr = self.lab.us_main_addr;
        let us_host = self.lab.us_main;

        if let (Target::Quic, Strategy::QuicVersion(version)) = (target, strategy) {
            return self.evaluate_quic(v_host, v_addr, us_host, us_addr, port, version);
        }
        if target == Target::Quic {
            // Non-QUIC strategies against the QUIC filter: only the
            // version change applies; baseline shows the block.
            return self.evaluate_quic(v_host, v_addr, us_host, us_addr, port, QuicVersion::V1);
        }

        // Configure the server per strategy. The response is a full
        // "page": big enough that SNI-II's 5–8-packet allowance visibly
        // truncates it (a bare ServerHello would sneak through).
        let behavior = PortBehavior::TlsServerPage(PAGE_BYTES);
        let server_port = match strategy {
            Strategy::ServerSmallWindow(w) => {
                ServerPort::new(443, behavior).small_window(w)
            }
            Strategy::ServerSplitHandshake => {
                ServerPort::new(443, behavior).split_handshake()
            }
            Strategy::ServerCombined(w) => ServerPort::new(443, behavior)
                .split_handshake()
                .small_window(w),
            Strategy::ServerDelayedResponse(d) => {
                ServerPort::new(443, behavior).delayed(d)
            }
            _ => ServerPort::new(443, behavior),
        };
        // Real servers reassemble fragmented IP packets (the TSPU does
        // not — that asymmetry is the point of the fragmentation
        // strategies).
        self.lab.net.set_app(
            us_host,
            Box::new(ReassemblingApp::new(ServerApp::new(us_addr).with_port(server_port))),
        );

        // Configure the client per strategy.
        let mut builder = ClientHelloBuilder::new(target.domain());
        if let Strategy::ClientPadding(n) = strategy {
            builder = builder.padding(n);
        }
        let mut request = builder.build();
        if strategy == Strategy::ClientPrependRecord {
            let mut with_record = change_cipher_spec_record();
            with_record.extend_from_slice(&request);
            request = with_record;
        }
        let mut shaping = SendShaping::default();
        match strategy {
            Strategy::ClientSegmentation(n) => shaping.segment_bytes = Some(n),
            Strategy::ClientIpFragmentation(n) => shaping.ip_fragment_bytes = Some(n),
            Strategy::ClientTtlDecoy(ttl) => {
                shaping.decoys = vec![(ttl, vec![0xde; 120]), (ttl, vec![0xad; 120])];
            }
            Strategy::ClientPadding(_) => {
                // Padding inflates the record past one MSS so the stack
                // segments naturally.
                shaping.segment_bytes = Some(1460.min(request.len() - 1));
            }
            _ => {}
        }

        let mut config = TcpClientConfig::new(v_addr, port, us_addr, 443, request);
        config.shaping = shaping;
        let (app, report, syn) = TcpClient::start(config);
        self.lab.net.set_app(v_host, Box::new(app));
        self.lab.net.send_from(v_host, syn);
        self.lab.net.run_until_idle();
        // Success means the whole page arrived, not just a first packet:
        // SNI-II lets a handful of packets through before the symmetric
        // drops set in.
        report.outcome() == ClientOutcome::GotData
            && report.read().bytes_received >= PAGE_BYTES * 3 / 4
    }

    fn evaluate_quic(
        &mut self,
        v_host: HostId,
        v_addr: std::net::Ipv4Addr,
        us_host: HostId,
        us_addr: std::net::Ipv4Addr,
        port: u16,
        version: QuicVersion,
    ) -> bool {
        self.lab
            .net
            .set_app(us_host, Box::new(ServerApp::new(us_addr).with_udp_echo(443)));
        let (app, replies, packets) = QuicClient::start(v_addr, port, us_addr, version, 3);
        self.lab.net.set_app(v_host, Box::new(app));
        for (delay, packet) in packets {
            let _ = delay;
            self.lab.net.send_from(v_host, packet);
        }
        self.lab.net.run_until_idle();
        let got = replies.get();
        got >= 3
    }
}

/// One row of the evaluation matrix.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    pub strategy: String,
    pub server_side: bool,
    /// (target label, succeeded on symmetric-only, succeeded with an
    /// additional upstream-only device on path).
    pub outcomes: Vec<(&'static str, bool, bool)>,
}

/// Every strategy the paper discusses, in evaluation order.
pub fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::None,
        Strategy::ServerSmallWindow(64),
        Strategy::ServerSplitHandshake,
        Strategy::ServerCombined(64),
        Strategy::ServerDelayedResponse(Duration::from_secs(61)),
        Strategy::ClientSegmentation(16),
        Strategy::ClientIpFragmentation(64),
        Strategy::ClientPadding(1400),
        Strategy::ClientPrependRecord,
        Strategy::ClientTtlDecoy(1),
        Strategy::QuicVersion(QuicVersion::Draft29),
        Strategy::QuicVersion(QuicVersion::QuicPing),
    ]
}

/// Runs the full §8 matrix: every strategy × every target × both
/// deployment shapes (ER-Telecom symmetric-only, Rostelecom with an
/// upstream-only second device).
pub fn evaluate_matrix(universe: &Universe) -> Vec<MatrixRow> {
    evaluate_matrix_with(CircumventionLab::new(universe))
}

/// Runs the matrix against fully hardened devices — §8's predicted
/// future: "the TSPU could easily patch these evasion strategies".
pub fn evaluate_matrix_hardened(universe: &Universe) -> Vec<MatrixRow> {
    evaluate_matrix_with(CircumventionLab::hardened(universe, tspu_core::Hardening::full()))
}

fn evaluate_matrix_with(mut harness: CircumventionLab) -> Vec<MatrixRow> {
    let mut rows = Vec::new();
    for strategy in all_strategies() {
        let mut outcomes = Vec::new();
        for target in Target::ALL {
            // Skip meaningless combinations: TCP strategies are evaluated
            // on TCP targets; QUIC version changes on the QUIC target.
            let relevant = match (strategy, target) {
                (Strategy::QuicVersion(_), t) => t == Target::Quic,
                (Strategy::None, _) => true,
                (_, Target::Quic) => false,
                _ => true,
            };
            if !relevant {
                continue;
            }
            let symmetric_only = harness.evaluate(strategy, target, "ER-Telecom");
            let with_upstream = harness.evaluate(strategy, target, "Rostelecom");
            outcomes.push((target.label(), symmetric_only, with_upstream));
        }
        rows.push(MatrixRow {
            strategy: strategy.name(),
            server_side: strategy.server_side(),
            outcomes,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> CircumventionLab {
        let universe = Universe::generate(3);
        CircumventionLab::new(&universe)
    }

    #[test]
    fn baseline_blocked_everywhere() {
        let mut h = harness();
        for target in Target::ALL {
            assert!(!h.evaluate(Strategy::None, target, "ER-Telecom"), "{target:?}");
        }
        // And an uncensored domain loads fine (harness sanity).
        let port = h.next_port();
        let v = h.lab.vantage("ER-Telecom");
        let (v_host, v_addr) = (v.host, v.addr);
        let us = h.lab.us_main;
        let us_addr = h.lab.us_main_addr;
        h.lab.net.set_app(us, Box::new(ServerApp::https_site(us_addr)));
        let (app, report, syn) = TcpClient::start(TcpClientConfig::new(
            v_addr,
            port,
            us_addr,
            443,
            ClientHelloBuilder::new("rust-lang.org").build(),
        ));
        h.lab.net.set_app(v_host, Box::new(app));
        h.lab.net.send_from(v_host, syn);
        h.lab.net.run_until_idle();
        assert_eq!(report.outcome(), ClientOutcome::GotData);
    }

    #[test]
    fn split_handshake_beats_sni1_not_sni4() {
        let mut h = harness();
        assert!(h.evaluate(Strategy::ServerSplitHandshake, Target::Sni1, "ER-Telecom"));
        assert!(!h.evaluate(Strategy::ServerSplitHandshake, Target::Sni4, "ER-Telecom"));
    }

    #[test]
    fn small_window_beats_all_sni_mechanisms() {
        let mut h = harness();
        for target in [Target::Sni1, Target::Sni2, Target::Sni4] {
            assert!(h.evaluate(Strategy::ServerSmallWindow(64), target, "ER-Telecom"), "{target:?}");
            assert!(h.evaluate(Strategy::ServerSmallWindow(64), target, "Rostelecom"), "{target:?} upstream");
        }
    }

    #[test]
    fn client_segmentation_and_fragmentation_evade() {
        let mut h = harness();
        for strategy in [
            Strategy::ClientSegmentation(16),
            Strategy::ClientIpFragmentation(64),
            Strategy::ClientPrependRecord,
        ] {
            for target in [Target::Sni1, Target::Sni2, Target::Sni4] {
                assert!(h.evaluate(strategy, target, "ER-Telecom"), "{strategy:?} {target:?}");
            }
        }
    }

    #[test]
    fn ttl_decoys_are_mitigated() {
        // §8: "sending TTL-limited random-looking packets no longer
        // prevents the following ClientHello from triggering".
        let mut h = harness();
        assert!(!h.evaluate(Strategy::ClientTtlDecoy(1), Target::Sni1, "ER-Telecom"));
    }

    #[test]
    fn delayed_response_waits_out_syn_sent() {
        let mut h = harness();
        assert!(h.evaluate(
            Strategy::ServerDelayedResponse(Duration::from_secs(61)),
            Target::Sni1,
            "ER-Telecom"
        ));
        // Too short a delay does not help.
        assert!(!h.evaluate(
            Strategy::ServerDelayedResponse(Duration::from_secs(30)),
            Target::Sni1,
            "ER-Telecom"
        ));
    }

    #[test]
    fn hardened_devices_close_the_evasions() {
        // §8's prediction, end to end: the patched TSPU defeats every
        // SNI-layer strategy (the QUIC version change survives — patching
        // it needs a new fingerprint, not more resources).
        let universe = Universe::generate(3);
        let mut h = CircumventionLab::hardened(&universe, tspu_core::Hardening::full());
        for strategy in [
            Strategy::ServerSmallWindow(64),
            Strategy::ServerSplitHandshake,
            Strategy::ClientSegmentation(16),
            Strategy::ClientIpFragmentation(64),
            Strategy::ClientPadding(1400),
            Strategy::ClientPrependRecord,
        ] {
            assert!(
                !h.evaluate(strategy, Target::Sni1, "ER-Telecom"),
                "{strategy:?} must be defeated by full hardening"
            );
        }
        // Version-change still works: the fingerprint is version-keyed.
        assert!(h.evaluate(Strategy::QuicVersion(QuicVersion::Draft29), Target::Quic, "ER-Telecom"));
    }

    #[test]
    fn quic_version_change_evades() {
        let mut h = harness();
        assert!(!h.evaluate(Strategy::None, Target::Quic, "ER-Telecom"), "v1 blocked");
        assert!(h.evaluate(Strategy::QuicVersion(QuicVersion::Draft29), Target::Quic, "ER-Telecom"));
        assert!(h.evaluate(Strategy::QuicVersion(QuicVersion::QuicPing), Target::Quic, "ER-Telecom"));
    }
}
