//! Every list-size and blocking-count constant taken from the paper (§6),
//! used as generation targets so our measured results land on the paper's
//! numbers by construction where the paper fixes them, and on documented
//! assumptions where it does not.

/// Tranco top domains tested (§6.1).
pub const TRANCO_COUNT: usize = 10_000;
/// Citizen Lab Global Block List additions; Tranco + CLBL = 11,325 unique.
pub const CLBL_EXTRA: usize = 1_325;
/// Total test-list size: "our Tranco list contains 11325 unique domains".
pub const TRANCO_TOTAL: usize = TRANCO_COUNT + CLBL_EXTRA;

/// Registry sample size: "randomly sampling 10,000 domain names that have
/// been added to the registry since January 1, 2022".
pub const REGISTRY_SAMPLE: usize = 10_000;

/// "the TSPU blocks the same list of 9,655 domains in all three ISPs"
/// (of the registry sample).
pub const TSPU_BLOCKED_REGISTRY: usize = 9_655;

/// Table 3: SNI-I domain count "(9899)" across both test lists.
pub const SNI1_TOTAL: usize = 9_899;
/// SNI-I domains from the Tranco side (difference to the registry side).
pub const SNI1_TRANCO: usize = SNI1_TOTAL - TSPU_BLOCKED_REGISTRY; // 244

/// Of the Tranco-side SNI-I domains, the ones present in the registry
/// (facebook, twitter, instagram, …); the rest are out-registry (Google
/// services, circumvention tools, news, pornography). Assumption: the
/// paper says "most" tranco-only blocks are out-registry.
pub const SNI1_TRANCO_IN_REGISTRY: usize = 94;

/// Table 3's SNI-II list (out-registry, exact domains given in the paper).
pub const SNI2_DOMAINS: [&str; 4] =
    ["nordaccount.com", "play.google.com", "news.google.com", "nordvpn.com"];

/// Table 3's SNI-IV list (exact domains given in the paper).
pub const SNI4_DOMAINS: [&str; 7] = [
    "twimg.com", "t.co", "messenger.com", "cdninstagram.com",
    "twitter.com", "web.facebook.com", "numbuster.ru",
];

/// Domains throttled Feb 26 – Mar 4 (§5.2 SNI-III: "e.g. twitter.com,
/// fbcdn.net").
pub const SNI3_DOMAINS: [&str; 4] = ["twitter.com", "t.co", "twimg.com", "fbcdn.net"];

/// Resolver blockpage coverage of the recent registry sample (§6.3):
/// "returning blockpages for only 1,302 and 3,943 domains" (Rostelecom,
/// OBIT). ER-Telecom is not quantified; we assume a fresher list.
pub const RESOLVER_COVERAGE_ROSTELECOM: usize = 1_302;
pub const RESOLVER_COVERAGE_OBIT: usize = 3_943;
/// Assumption (not in paper): ER-Telecom keeps its resolver list fresher.
pub const RESOLVER_COVERAGE_ERTELECOM: usize = 8_412;

/// Fig. 7 exclusions: "(1398+2680) domains that failed TCP, or
/// empty/unparseable HTML responses".
pub const FETCH_FAILED_TCP: usize = 1_398;
pub const FETCH_BAD_HTML: usize = 2_680;

/// Reliability failure rates (Table 1), per vantage ISP and mechanism,
/// in *per-device* terms. Rostelecom and OBIT have two devices on path,
/// so their observed rates are roughly the square of the per-device rate;
/// ER-Telecom has one device and shows the raw rate. Values below are the
/// per-device rates we configure so the *observed* Table 1 numbers emerge.
pub mod table1 {
    /// Observed percentages from the paper (for comparison output).
    pub const OBSERVED: [(&str, [f64; 5]); 3] = [
        // (ISP, [SNI-I, SNI-II, SNI-IV, QUIC, IP-Based]) in percent
        ("Rostelecom", [0.084, 0.0025, 0.27, 0.02, 0.00]),
        ("ER-Telecom", [f64::NAN, 1.76, 2.19, 0.93, 0.045]),
        ("OBIT", [0.14, 0.005, 0.04, 0.00, 0.02]),
    ];

    /// Per-device failure probabilities (fractions, not percent), chosen
    /// so the *observed* rates land on the paper's Table 1:
    ///
    /// * SNI-II, QUIC and IP blocking are enforceable by upstream-only
    ///   devices too (they act on upstream packets), so on the two-device
    ///   paths (Rostelecom, OBIT) both devices must fail — per-device
    ///   rate = sqrt(observed).
    /// * SNI-I acts on *downstream* packets, which upstream-only devices
    ///   never see (§7.1.1 "underblocking"), so only the symmetric device
    ///   enforces it — per-device rate = observed.
    /// * SNI-IV is probed through a split handshake; the upstream-only
    ///   device never sees the remote SYN, so its view is an unambiguous
    ///   local client and it installs the (downstream-impotent) SNI-I
    ///   verdict instead of the backup drop — only the symmetric device's
    ///   SNI-IV matters: per-device rate = observed.
    /// * ER-Telecom has a single (symmetric) device: rate = observed.
    pub const PER_DEVICE: [(&str, [f64; 5]); 3] = [
        ("Rostelecom", [0.00084, 0.005, 0.0027, 0.01414, 0.0]),
        ("ER-Telecom", [0.010, 0.0176, 0.0219, 0.0093, 0.00045]),
        ("OBIT", [0.0014, 0.00707, 0.0004, 0.0, 0.01414]),
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    // The assertions are deliberately over constants: they pin the
    // transcribed paper numbers against each other.
    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn counts_are_consistent() {
        assert_eq!(TRANCO_TOTAL, 11_325);
        assert_eq!(SNI1_TRANCO, 244);
        assert!(SNI1_TRANCO_IN_REGISTRY < SNI1_TRANCO);
        assert!(TSPU_BLOCKED_REGISTRY < REGISTRY_SAMPLE);
        assert!(RESOLVER_COVERAGE_ROSTELECOM < RESOLVER_COVERAGE_OBIT);
        assert!(RESOLVER_COVERAGE_OBIT < TSPU_BLOCKED_REGISTRY);
    }

    #[test]
    fn table1_two_device_squares_approximate_observed() {
        // Rostelecom SNI-II: (0.5 %)² ≈ 0.0025 %.
        let per_device = table1::PER_DEVICE[0].1[1];
        let observed_pct = per_device * per_device * 100.0;
        assert!((observed_pct - 0.0025).abs() < 0.001, "{observed_pct}");
        // SNI-I does not compound: per-device equals observed.
        assert!((table1::PER_DEVICE[0].1[0] * 100.0 - 0.084).abs() < 1e-9);
    }
}
