//! Deterministic generation of the domain universe and the block lists
//! derived from it.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::stats;

/// Content categories, merged to the 11 of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    Circumvention,
    Provocative,
    Technology,
    Pornography,
    Service,
    Streaming,
    Pirating,
    Finance,
    Gambling,
    Drugs,
    InformativeMedia,
}

impl Category {
    /// All categories, in Fig. 7's display order.
    pub const ALL: [Category; 11] = [
        Category::Circumvention,
        Category::Provocative,
        Category::Technology,
        Category::Pornography,
        Category::Service,
        Category::Streaming,
        Category::Pirating,
        Category::Finance,
        Category::Gambling,
        Category::Drugs,
        Category::InformativeMedia,
    ];

    /// Display name as in Fig. 7.
    pub fn name(self) -> &'static str {
        match self {
            Category::Circumvention => "Circumvention",
            Category::Provocative => "Provocative",
            Category::Technology => "Technology",
            Category::Pornography => "Pornography",
            Category::Service => "Service",
            Category::Streaming => "Streaming",
            Category::Pirating => "Pirating",
            Category::Finance => "Finance",
            Category::Gambling => "Gambling",
            Category::Drugs => "Drugs",
            Category::InformativeMedia => "Informative Media",
        }
    }

    /// Characteristic vocabulary used to synthesize page content and to
    /// classify it back (the LDA stand-in).
    pub fn keywords(self) -> &'static [&'static str] {
        match self {
            Category::Circumvention => &["vpn", "proxy", "tor", "bypass", "tunnel", "unblock"],
            Category::Provocative => &["protest", "rights", "freedom", "activist", "corruption"],
            Category::Technology => &["software", "cloud", "developer", "hardware", "code"],
            Category::Pornography => &["adult", "explicit", "cam", "xxx", "mature"],
            Category::Service => &["account", "login", "support", "delivery", "booking"],
            Category::Streaming => &["video", "stream", "music", "movie", "episode", "player"],
            Category::Pirating => &["torrent", "crack", "keygen", "warez", "magnet"],
            Category::Finance => &["bank", "crypto", "exchange", "loan", "invest"],
            Category::Gambling => &["casino", "bet", "poker", "slots", "jackpot", "odds"],
            Category::Drugs => &["pharma", "pills", "dose", "shop24", "substances"],
            Category::InformativeMedia => &["news", "report", "journal", "blog", "media", "press"],
        }
    }

    /// Weight of this category inside the registry sample (shaped after
    /// Fig. 7: gambling, media and streaming dominate).
    fn registry_weight(self) -> u32 {
        match self {
            Category::Gambling => 26,
            Category::InformativeMedia => 24,
            Category::Streaming => 14,
            Category::Drugs => 8,
            Category::Finance => 8,
            Category::Pirating => 6,
            Category::Pornography => 5,
            Category::Service => 4,
            Category::Technology => 2,
            Category::Provocative => 2,
            Category::Circumvention => 1,
        }
    }

    /// Weight inside the Tranco list (popular global sites).
    fn tranco_weight(self) -> u32 {
        match self {
            Category::Service => 22,
            Category::Technology => 20,
            Category::InformativeMedia => 18,
            Category::Streaming => 14,
            Category::Finance => 10,
            Category::Pornography => 6,
            Category::Circumvention => 4,
            Category::Provocative => 3,
            Category::Gambling => 1,
            Category::Pirating => 1,
            Category::Drugs => 1,
        }
    }
}

/// Which list a domain came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListKind {
    /// Tranco top list (plus CLBL additions).
    Tranco,
    /// Registry sample (added since 2022-01-01).
    RegistrySample,
}

/// One domain in the universe.
#[derive(Debug, Clone)]
pub struct Domain {
    pub name: String,
    pub category: Category,
    pub list: ListKind,
    /// Day (since 2022-01-01) the domain entered the blocking registry;
    /// `None` for domains not in the registry at all.
    pub registry_added_day: Option<u32>,
    /// Primary language is Russian (affects the classifier pipeline).
    pub russian: bool,
}

/// The derived block lists: what each enforcement point targets.
#[derive(Debug, Clone, Default)]
pub struct BlockSets {
    /// SNI-I RST/ACK blocking (TSPU).
    pub sni_rst: HashSet<String>,
    /// SNI-II delayed-drop (TSPU, out-registry).
    pub sni_slow: HashSet<String>,
    /// SNI-III throttling (TSPU, while active).
    pub sni_throttle: HashSet<String>,
    /// SNI-IV backup (TSPU).
    pub sni_backup: HashSet<String>,
    /// Per-ISP resolver blocklists (blockpage-based), keyed by ISP name.
    pub isp_resolver: std::collections::HashMap<String, HashSet<String>>,
}

/// The generated universe.
pub struct Universe {
    pub tranco: Vec<Domain>,
    pub registry_sample: Vec<Domain>,
    pub blocks: BlockSets,
}

fn synth_name(rng: &mut SmallRng, category: Category, russian: bool, serial: usize) -> String {
    const SYLLABLES: [&str; 16] = [
        "ra", "ve", "to", "mi", "ska", "lon", "dar", "pex", "zu", "qui", "nor", "bel", "tu",
        "gri", "ost", "fan",
    ];
    let tld = if russian {
        *["ru", "su", "рф", "net", "com"].choose(rng).unwrap()
    } else {
        *["com", "net", "org", "io", "tv"].choose(rng).unwrap()
    };
    let stem = category.keywords()[serial % category.keywords().len()];
    let a = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
    let b = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
    format!("{stem}-{a}{b}{serial}.{tld}")
}

fn pick_category(rng: &mut SmallRng, weights: &[(Category, u32)]) -> Category {
    let total: u32 = weights.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (category, weight) in weights {
        if roll < *weight {
            return *category;
        }
        roll -= weight;
    }
    weights[0].0
}

impl Universe {
    /// Generates the full universe deterministically from a seed.
    pub fn generate(seed: u64) -> Universe {
        let mut rng = SmallRng::seed_from_u64(seed);

        let tranco_weights: Vec<(Category, u32)> =
            Category::ALL.iter().map(|&c| (c, c.tranco_weight())).collect();
        let registry_weights: Vec<(Category, u32)> =
            Category::ALL.iter().map(|&c| (c, c.registry_weight())).collect();

        // --- Tranco + CLBL (11,325) ---
        let mut tranco = Vec::with_capacity(stats::TRANCO_TOTAL);
        // A handful of real, recognizable anchors from the paper's tables.
        let anchors: [(&str, Category); 12] = [
            ("twitter.com", Category::InformativeMedia),
            ("facebook.com", Category::InformativeMedia),
            ("instagram.com", Category::InformativeMedia),
            ("t.co", Category::Service),
            ("twimg.com", Category::Service),
            ("dw.com", Category::InformativeMedia),
            ("bbc.com", Category::InformativeMedia),
            ("meduza.io", Category::InformativeMedia),
            ("tor.eff.org", Category::Circumvention),
            ("nordvpn.com", Category::Circumvention),
            ("play.google.com", Category::Service),
            ("news.google.com", Category::InformativeMedia),
        ];
        for (name, category) in anchors {
            tranco.push(Domain {
                name: name.to_string(),
                category,
                list: ListKind::Tranco,
                registry_added_day: None,
                russian: false,
            });
        }
        while tranco.len() < stats::TRANCO_TOTAL {
            let category = pick_category(&mut rng, &tranco_weights);
            let russian = rng.gen_bool(0.06);
            let serial = tranco.len();
            tranco.push(Domain {
                name: synth_name(&mut rng, category, russian, serial),
                category,
                list: ListKind::Tranco,
                registry_added_day: None,
                russian,
            });
        }

        // --- Registry sample (10,000; added day 0..130) ---
        let mut registry_sample = Vec::with_capacity(stats::REGISTRY_SAMPLE);
        for serial in 0..stats::REGISTRY_SAMPLE {
            let category = pick_category(&mut rng, &registry_weights);
            let russian = rng.gen_bool(0.8);
            registry_sample.push(Domain {
                name: synth_name(&mut rng, category, russian, serial + 100_000),
                category,
                list: ListKind::RegistrySample,
                registry_added_day: Some(rng.gen_range(0..130)),
                russian,
            });
        }

        // --- Block sets ---
        let mut blocks = BlockSets::default();

        // TSPU SNI-I over the registry sample: 9,655 of 10,000.
        let mut reg_names: Vec<&Domain> = registry_sample.iter().collect();
        reg_names.shuffle(&mut rng);
        for domain in reg_names.iter().take(stats::TSPU_BLOCKED_REGISTRY) {
            blocks.sni_rst.insert(domain.name.clone());
        }

        // Tranco-side SNI-I: 94 in-registry anchors + generated, 150
        // out-registry (google services, circumvention, news, porn).
        let mut tranco_blockable: Vec<usize> = tranco
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                matches!(
                    d.category,
                    Category::Circumvention
                        | Category::InformativeMedia
                        | Category::Pornography
                        | Category::Provocative
                        | Category::Pirating
                )
            })
            .map(|(i, _)| i)
            .collect();
        tranco_blockable.shuffle(&mut rng);
        let take = stats::SNI1_TRANCO.min(tranco_blockable.len());
        for (n, &idx) in tranco_blockable[..take].iter().enumerate() {
            blocks.sni_rst.insert(tranco[idx].name.clone());
            if n < stats::SNI1_TRANCO_IN_REGISTRY {
                // These are also registry entries (added pre-2022).
                tranco[idx].registry_added_day = Some(0);
            }
        }

        // Exact paper lists for SNI-II, SNI-III, SNI-IV.
        for name in stats::SNI2_DOMAINS {
            blocks.sni_slow.insert(name.to_string());
        }
        for name in stats::SNI3_DOMAINS {
            blocks.sni_throttle.insert(name.to_string());
        }
        for name in stats::SNI4_DOMAINS {
            blocks.sni_backup.insert(name.to_string());
            // SNI-IV targets are also SNI-I targets (§6.3).
            blocks.sni_rst.insert(name.to_string());
        }
        // The social-media anchors are registry-listed SNI-I targets.
        for name in ["twitter.com", "facebook.com", "instagram.com", "dw.com", "bbc.com", "meduza.io", "tor.eff.org"] {
            blocks.sni_rst.insert(name.to_string());
        }

        // Per-ISP resolver lists: full coverage of old registry entries,
        // partial on recent ones (§6.3).
        let recent: Vec<&Domain> = registry_sample.iter().collect();
        for (isp, coverage) in [
            ("Rostelecom", stats::RESOLVER_COVERAGE_ROSTELECOM),
            ("OBIT", stats::RESOLVER_COVERAGE_OBIT),
            ("ER-Telecom", stats::RESOLVER_COVERAGE_ERTELECOM),
        ] {
            let mut list = HashSet::new();
            // Old registry entries (tranco side) are well covered.
            for domain in tranco.iter().filter(|d| d.registry_added_day.is_some()) {
                if rng.gen_bool(0.93) {
                    list.insert(domain.name.clone());
                }
            }
            // Recent entries: only the first `coverage` by added-day order
            // (stale list = old snapshot of the registry).
            let mut by_day: Vec<&&Domain> = recent.iter().collect();
            by_day.sort_by_key(|d| (d.registry_added_day, d.name.clone()));
            for domain in by_day.into_iter().take(coverage) {
                list.insert(domain.name.clone());
            }
            blocks.isp_resolver.insert(isp.to_string(), list);
        }

        Universe { tranco, registry_sample, blocks }
    }

    /// Builds the TSPU [`tspu-core` policy]-shaped lists. (Returned as
    /// plain collections; `tspu-topology` turns them into a `Policy`.)
    pub fn block_sets(&self) -> &BlockSets {
        &self.blocks
    }

    /// All domains across both lists.
    pub fn all_domains(&self) -> impl Iterator<Item = &Domain> {
        self.tranco.iter().chain(self.registry_sample.iter())
    }

    /// Looks up a domain by name.
    pub fn find(&self, name: &str) -> Option<&Domain> {
        self.all_domains().find(|d| d.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Universe::generate(7);
        let b = Universe::generate(7);
        assert_eq!(a.tranco.len(), b.tranco.len());
        assert_eq!(a.tranco[500].name, b.tranco[500].name);
        assert_eq!(a.blocks.sni_rst.len(), b.blocks.sni_rst.len());
    }

    #[test]
    fn list_sizes_match_paper() {
        let u = Universe::generate(1);
        assert_eq!(u.tranco.len(), 11_325);
        assert_eq!(u.registry_sample.len(), 10_000);
    }

    #[test]
    fn sni1_covers_9655_registry_domains() {
        let u = Universe::generate(1);
        let blocked_registry = u
            .registry_sample
            .iter()
            .filter(|d| u.blocks.sni_rst.contains(&d.name))
            .count();
        assert_eq!(blocked_registry, 9_655);
    }

    #[test]
    fn sni1_total_close_to_table3() {
        let u = Universe::generate(1);
        // 9,899 plus the handful of named anchors we force in.
        assert!((9_899..=9_920).contains(&u.blocks.sni_rst.len()), "{}", u.blocks.sni_rst.len());
    }

    #[test]
    fn exact_paper_lists_present() {
        let u = Universe::generate(3);
        assert_eq!(u.blocks.sni_slow.len(), 4);
        assert!(u.blocks.sni_slow.contains("play.google.com"));
        assert_eq!(u.blocks.sni_backup.len(), 7);
        assert!(u.blocks.sni_backup.contains("web.facebook.com"));
        assert!(u.blocks.sni_rst.contains("twitter.com"));
    }

    #[test]
    fn resolver_coverage_ordering() {
        let u = Universe::generate(1);
        let recent = |isp: &str| {
            u.registry_sample
                .iter()
                .filter(|d| u.blocks.isp_resolver[isp].contains(&d.name))
                .count()
        };
        let rostelecom = recent("Rostelecom");
        let obit = recent("OBIT");
        let ertelecom = recent("ER-Telecom");
        assert_eq!(rostelecom, 1_302);
        assert_eq!(obit, 3_943);
        assert!(ertelecom > obit);
    }

    #[test]
    fn registry_days_in_2022_window() {
        let u = Universe::generate(1);
        assert!(u
            .registry_sample
            .iter()
            .all(|d| matches!(d.registry_added_day, Some(day) if day < 130)));
    }

    #[test]
    fn anchors_findable() {
        let u = Universe::generate(1);
        assert!(u.find("twitter.com").is_some());
        assert!(u.find("no-such-domain.example").is_none());
    }

    #[test]
    fn category_mix_shaped_like_fig7() {
        let u = Universe::generate(1);
        let count = |cat| u.registry_sample.iter().filter(|d| d.category == cat).count();
        let gambling = count(Category::Gambling);
        let media = count(Category::InformativeMedia);
        let circumvention = count(Category::Circumvention);
        assert!(gambling > 2_000, "gambling {gambling}");
        assert!(media > 1_800, "media {media}");
        assert!(circumvention < 300, "circumvention {circumvention}");
    }
}
