//! The censorship policy timeline of early 2022 (§2, §5.2): a sequence of
//! centrally coordinated policy states, keyed by days since 2022-01-01.

use crate::universe::Universe;

/// Day-number helpers (days since 2022-01-01, day 0 = Jan 1).
pub mod day {
    /// February 24, 2022 — the invasion; blocking escalation begins.
    pub const FEB_24: u32 = 54;
    /// February 26 — hard throttling of Twitter/Facebook domains starts
    /// (SNI-III at ~650 B/s).
    pub const FEB_26: u32 = 56;
    /// March 4 — throttling replaced by RST blocking; QUIC filter
    /// deployed; western news agencies blocked.
    pub const MAR_4: u32 = 62;
    /// March 14 — Instagram fully blocked.
    pub const MAR_14: u32 = 72;
}

/// A day-indexed view of what the central policy looked like.
pub struct PolicyTimeline<'a> {
    universe: &'a Universe,
}

/// A snapshot of policy toggles for a given day. The domain lists
/// themselves live in the universe's block sets; the snapshot says which
/// mechanisms are active and which list variant applies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyEpoch {
    /// SNI-I RST blocking includes the escalation domains (social media,
    /// news) — true from Feb 24 on; before that only registry content.
    pub escalation_blocks: bool,
    /// SNI-III throttling in force (Feb 26 – Mar 4 only).
    pub throttle_active: bool,
    /// QUIC filter deployed (Mar 4 on).
    pub quic_filter: bool,
}

impl<'a> PolicyTimeline<'a> {
    /// Builds the timeline over a universe.
    pub fn new(universe: &'a Universe) -> PolicyTimeline<'a> {
        PolicyTimeline { universe }
    }

    /// The backing universe.
    pub fn universe(&self) -> &Universe {
        self.universe
    }

    /// The policy toggles in force on `day` (days since 2022-01-01).
    pub fn epoch(&self, day_number: u32) -> PolicyEpoch {
        PolicyEpoch {
            escalation_blocks: day_number >= day::FEB_24,
            throttle_active: (day::FEB_26..day::MAR_4).contains(&day_number),
            quic_filter: day_number >= day::MAR_4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn epochs_follow_the_reported_dates() {
        let universe = Universe::generate(1);
        let timeline = PolicyTimeline::new(&universe);

        // January: registry blocking only.
        let jan = timeline.epoch(10);
        assert!(!jan.escalation_blocks && !jan.throttle_active && !jan.quic_filter);

        // Feb 25: escalation but no throttling yet.
        let feb25 = timeline.epoch(day::FEB_24 + 1);
        assert!(feb25.escalation_blocks && !feb25.throttle_active);

        // Feb 28: throttling (the SNI-III window).
        let feb28 = timeline.epoch(58);
        assert!(feb28.throttle_active && !feb28.quic_filter);

        // Mar 3: last full day of throttling.
        assert!(timeline.epoch(day::MAR_4 - 1).throttle_active);

        // Mar 4: throttling replaced by RST, QUIC filter on.
        let mar4 = timeline.epoch(day::MAR_4);
        assert!(!mar4.throttle_active && mar4.quic_filter && mar4.escalation_blocks);
    }

    // Deliberate constant assertions: the transcribed dates must stay
    // in chronological order.
    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn day_constants_are_ordered() {
        assert!(day::FEB_24 < day::FEB_26);
        assert!(day::FEB_26 < day::MAR_4);
        assert!(day::MAR_4 < day::MAR_14);
    }
}
