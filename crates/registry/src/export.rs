//! The registry dump format: the leaked z-i repository the paper uses
//! ("a copy of the blocked domains that is distributed by Roskomnadzor to
//! ISPs", §6.1) serializes entries as `ip;domain;date` lines. This module
//! writes and parses that shape, and derives per-ISP resolver lists from a
//! *sync date* — an ISP's blocklist is simply the registry as of the last
//! day its equipment pulled the dump, which is where §6.3's staleness
//! numbers come from.

use std::collections::HashSet;

use crate::universe::{Domain, Universe};

/// One exported registry line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    pub domain: String,
    /// Day (since 2022-01-01) the entry was added.
    pub added_day: u32,
}

/// Serializes the registry (every domain with an added-day) in the dump's
/// `;domain;day` line shape (the IP column is left empty for domain
/// entries, as in the real dump).
pub fn export(universe: &Universe) -> String {
    let mut entries: Vec<RegistryEntry> = universe
        .all_domains()
        .filter_map(|d| {
            d.registry_added_day.map(|added_day| RegistryEntry { domain: d.name.clone(), added_day })
        })
        .collect();
    entries.sort_by(|a, b| (a.added_day, &a.domain).cmp(&(b.added_day, &b.domain)));
    let mut out = String::new();
    for entry in entries {
        out.push_str(&format!(";{};{}\n", entry.domain, entry.added_day));
    }
    out
}

/// Parses a dump produced by [`export`] (tolerating unknown columns).
pub fn parse(dump: &str) -> Vec<RegistryEntry> {
    dump.lines()
        .filter_map(|line| {
            let mut cols = line.split(';');
            let _ip = cols.next()?;
            let domain = cols.next()?.trim();
            let added_day = cols.next()?.trim().parse().ok()?;
            if domain.is_empty() {
                return None;
            }
            Some(RegistryEntry { domain: domain.to_string(), added_day })
        })
        .collect()
}

/// The registry as one ISP's equipment sees it after last syncing on
/// `sync_day`: every entry added on or before that day.
pub fn snapshot_as_of(entries: &[RegistryEntry], sync_day: u32) -> HashSet<String> {
    entries
        .iter()
        .filter(|e| e.added_day <= sync_day)
        .map(|e| e.domain.clone())
        .collect()
}

/// Finds the sync day that yields a list of (approximately) `target`
/// recent-registry entries — used to express the paper's observed
/// resolver coverage (1,302 / 3,943 domains, §6.3) as dates.
pub fn sync_day_for_coverage(entries: &[RegistryEntry], recent: &[Domain], target: usize) -> u32 {
    let mut best = (0u32, usize::MAX);
    for day in 0..=130 {
        let snapshot = snapshot_as_of(entries, day);
        let covered = recent.iter().filter(|d| snapshot.contains(&d.name)).count();
        let distance = covered.abs_diff(target);
        if distance < best.1 {
            best = (day, distance);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn export_parse_roundtrip() {
        let universe = Universe::generate(5);
        let dump = export(&universe);
        let entries = parse(&dump);
        // Registry sample (10k) + tranco in-registry entries.
        assert!(entries.len() >= 10_000, "{}", entries.len());
        // Sorted by day.
        assert!(entries.windows(2).all(|w| w[0].added_day <= w[1].added_day));
        // Round trip preserves the set.
        let reexported: HashSet<&str> = entries.iter().map(|e| e.domain.as_str()).collect();
        assert!(reexported.len() >= 10_000);
    }

    #[test]
    fn snapshot_grows_with_sync_day() {
        let universe = Universe::generate(5);
        let entries = parse(&export(&universe));
        let early = snapshot_as_of(&entries, 10);
        let late = snapshot_as_of(&entries, 120);
        assert!(early.len() < late.len());
        assert!(early.iter().all(|d| late.contains(d)));
    }

    #[test]
    fn sync_day_expresses_resolver_staleness() {
        // A resolver list of ~1,302 recent entries corresponds to a sync
        // date in mid-January — the staleness §6.3 measures, as a date.
        let universe = Universe::generate(5);
        let entries = parse(&export(&universe));
        let day = sync_day_for_coverage(&entries, &universe.registry_sample, 1_302);
        let covered = {
            let snapshot = snapshot_as_of(&entries, day);
            universe.registry_sample.iter().filter(|d| snapshot.contains(&d.name)).count()
        };
        assert!(covered.abs_diff(1_302) < 120, "day {day} covered {covered}");
        // And the fresher OBIT list corresponds to a later date.
        let obit_day = sync_day_for_coverage(&entries, &universe.registry_sample, 3_943);
        assert!(obit_day > day, "{obit_day} vs {day}");
    }

    #[test]
    fn parse_skips_malformed_lines() {
        let entries = parse("garbage\n;good.ru;5\n;;\n;also-good.ru;not-a-day\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].domain, "good.ru");
    }
}
