//! # tspu-registry
//!
//! The domain universe of the reproduction: synthetic stand-ins for the
//! Tranco top list + Citizen Lab list (11,325 domains, §6.1), a 10,000
//! domain sample of Roskomnadzor's blocking registry, the out-registry
//! resources only the TSPU blocks, per-ISP (stale) blocklists, and the
//! policy timeline of February–March 2022.
//!
//! ## Substitution note (per DESIGN.md)
//!
//! The paper uses the real Tranco list, a leaked registry copy, and LDA
//! topic modeling over fetched HTML. None of those travel: we generate a
//! deterministic universe whose *measured statistics match the paper's*
//! (counts of blocked domains per list and per ISP, category mix), attach
//! a latent category to every domain, synthesize keyword-bag "HTML" from
//! it, and recover categories with a naive-Bayes-flavored keyword
//! classifier standing in for LDA. Every constant that comes from the
//! paper is named in [`stats`].

pub mod churn;
pub mod classifier;
pub mod export;
pub mod stats;
pub mod timeline;
pub mod universe;

pub use churn::{ChurnBatch, ChurnConfig, ChurnSchedule};
pub use classifier::{classify_html, synthesize_html, FetchOutcome};
pub use timeline::{day, PolicyTimeline};
pub use universe::{Category, Domain, ListKind, Universe};
