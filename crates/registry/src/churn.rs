//! Registry churn: the blocklist as a *sequence of updates* rather than a
//! static snapshot.
//!
//! The paper's §5 deployment analysis rests on Roskomnadzor's registry
//! changing over time — domains are added (and occasionally delisted) in
//! daily batches, and TSPU devices converge on the new entries centrally
//! while per-ISP DPI lags behind its last registry dump. A
//! [`ChurnSchedule`] turns the universe's per-domain
//! `registry_added_day` stamps and the [`crate::timeline`] policy toggles
//! into an ordered list of [`ChurnBatch`]es, each stamped with the
//! *virtual* instant it should hit the wire, so a simulation can replay
//! weeks of registry history in seconds of virtual time.
//!
//! This module deliberately speaks only plain types (names, days,
//! `Duration` offsets): converting a batch into a `tspu_core::PolicyDelta`
//! is the consumer's one-liner, keeping the registry crate a leaf.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::timeline::{day, PolicyTimeline};
use crate::universe::Universe;

/// How a churn replay is derived from the universe.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// First registry day (since 2022-01-01) included in the replay.
    pub start_day: u32,
    /// One-past-the-last registry day included.
    pub end_day: u32,
    /// Virtual time allotted to one registry day. Weeks of history
    /// compress into however little virtual time the campaign wants.
    pub day_duration: Duration,
    /// Fraction of each day's additions that are later delisted (the
    /// registry's observed churn is not append-only: court orders expire
    /// and sites comply).
    pub removal_fraction: f64,
    /// Days between a domain's addition and its delisting, when delisted.
    pub removal_lag_days: u32,
    /// Seed for the (deterministic) delisting selection.
    pub seed: u64,
}

impl ChurnConfig {
    /// The February–March 2022 escalation window (§2, §5.2): Feb 24
    /// through a week past the March 14 Instagram block, one registry day
    /// per 200 ms of virtual time, 5 % of additions delisted after 10
    /// days.
    pub fn escalation_2022() -> ChurnConfig {
        ChurnConfig {
            start_day: day::FEB_24,
            end_day: day::MAR_14 + 7,
            day_duration: Duration::from_millis(200),
            removal_fraction: 0.05,
            removal_lag_days: 10,
            seed: 0,
        }
    }
}

/// One batch of registry churn: everything that lands on a single
/// registry day, stamped with its virtual application instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnBatch {
    /// Registry day (since 2022-01-01) this batch replays.
    pub day: u32,
    /// Virtual offset from replay start at which the batch applies.
    pub at: Duration,
    /// Domains entering SNI-I blocking.
    pub add: Vec<String>,
    /// Domains delisted from SNI-I blocking.
    pub remove: Vec<String>,
    /// QUIC-filter toggle crossing this day (Mar 4), if any.
    pub quic_filter: Option<bool>,
    /// SNI-III throttle toggle crossing this day (Feb 26 / Mar 4), if any.
    pub throttle_active: Option<bool>,
}

impl ChurnBatch {
    /// Number of list operations the batch carries.
    pub fn op_count(&self) -> usize {
        self.add.len() + self.remove.len()
    }
}

/// The full replay: batches ordered by virtual timestamp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnSchedule {
    batches: Vec<ChurnBatch>,
}

impl ChurnSchedule {
    /// Derives the schedule from a universe: each registry day inside the
    /// config window becomes one batch of that day's
    /// `registry_added_day` additions (in generation order — itself
    /// deterministic), a seeded subset of which is scheduled for
    /// delisting `removal_lag_days` later; policy-toggle flips from the
    /// [`PolicyTimeline`] ride on the batch of the day they cross.
    pub fn from_universe(universe: &Universe, config: &ChurnConfig) -> ChurnSchedule {
        assert!(config.start_day < config.end_day, "empty churn window");
        let timeline = PolicyTimeline::new(universe);
        let days = (config.end_day - config.start_day) as usize;
        let mut adds: Vec<Vec<String>> = vec![Vec::new(); days];
        let mut removes: Vec<Vec<String>> = vec![Vec::new(); days];

        for domain in &universe.registry_sample {
            let Some(added) = domain.registry_added_day else { continue };
            if added < config.start_day || added >= config.end_day {
                continue;
            }
            adds[(added - config.start_day) as usize].push(domain.name.clone());
        }

        // Deterministic delisting: an independent RNG stream per day, so
        // the selection for one day never depends on how many domains
        // another day added.
        for (day_index, day_adds) in adds.iter_mut().enumerate() {
            day_adds.sort_unstable();
            if config.removal_fraction <= 0.0 {
                continue;
            }
            let removal_day = day_index + config.removal_lag_days as usize;
            if removal_day >= days {
                continue;
            }
            let mut rng = SmallRng::seed_from_u64(
                config.seed ^ (day_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let delisted: Vec<String> =
                day_adds.iter().filter(|_| rng.gen_bool(config.removal_fraction)).cloned().collect();
            removes[removal_day].extend(delisted);
        }

        let mut batches = Vec::new();
        for day_index in 0..days {
            let day_number = config.start_day + day_index as u32;
            // The day before the window's first day still anchors the
            // comparison, so a flip landing exactly on `start_day` is kept.
            let previous = timeline.epoch(day_number.saturating_sub(1));
            let current = timeline.epoch(day_number);
            let quic_filter =
                (current.quic_filter != previous.quic_filter).then_some(current.quic_filter);
            let throttle_active = (current.throttle_active != previous.throttle_active)
                .then_some(current.throttle_active);
            let mut remove = std::mem::take(&mut removes[day_index]);
            remove.sort_unstable();
            let batch = ChurnBatch {
                day: day_number,
                at: config.day_duration * day_index as u32,
                add: std::mem::take(&mut adds[day_index]),
                remove,
                quic_filter,
                throttle_active,
            };
            if batch.op_count() > 0 || batch.quic_filter.is_some() || batch.throttle_active.is_some()
            {
                batches.push(batch);
            }
        }
        ChurnSchedule { batches }
    }

    /// The batches, ordered by virtual timestamp.
    pub fn batches(&self) -> &[ChurnBatch] {
        &self.batches
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when the window produced no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total domains added across the replay.
    pub fn total_adds(&self) -> usize {
        self.batches.iter().map(|b| b.add.len()).sum()
    }

    /// Total domains delisted across the replay.
    pub fn total_removes(&self) -> usize {
        self.batches.iter().map(|b| b.remove.len()).sum()
    }

    /// The virtual instant of the last batch (ZERO when empty).
    pub fn horizon(&self) -> Duration {
        self.batches.last().map(|b| b.at).unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> ChurnSchedule {
        let universe = Universe::generate(1);
        ChurnSchedule::from_universe(&universe, &ChurnConfig::escalation_2022())
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(schedule(), schedule());
    }

    #[test]
    fn batches_are_time_ordered_and_day_stamped() {
        let sched = schedule();
        assert!(!sched.is_empty());
        for pair in sched.batches().windows(2) {
            assert!(pair[0].at < pair[1].at);
            assert!(pair[0].day < pair[1].day);
        }
        let config = ChurnConfig::escalation_2022();
        for batch in sched.batches() {
            let index = batch.day - config.start_day;
            assert_eq!(batch.at, config.day_duration * index);
        }
    }

    #[test]
    fn covers_the_expected_share_of_the_registry() {
        let universe = Universe::generate(1);
        let config = ChurnConfig::escalation_2022();
        let sched = ChurnSchedule::from_universe(&universe, &config);
        let expected = universe
            .registry_sample
            .iter()
            .filter(|d| {
                d.registry_added_day
                    .is_some_and(|day| (config.start_day..config.end_day).contains(&day))
            })
            .count();
        assert_eq!(sched.total_adds(), expected);
        // ~5 % of a ~25-day window's additions get delisted (only those
        // whose lag lands inside the window).
        assert!(sched.total_removes() > 0);
        assert!(sched.total_removes() < expected / 10);
    }

    #[test]
    fn removals_only_name_previously_added_domains() {
        let sched = schedule();
        let mut seen = std::collections::HashSet::new();
        for batch in sched.batches() {
            for name in &batch.add {
                seen.insert(name.clone());
            }
            for name in &batch.remove {
                assert!(seen.contains(name), "delisted {name} before adding it");
            }
        }
    }

    #[test]
    fn toggle_flips_ride_the_crossing_day() {
        let sched = schedule();
        let mar4 = sched.batches().iter().find(|b| b.day == day::MAR_4).expect("Mar 4 batch");
        assert_eq!(mar4.quic_filter, Some(true));
        assert_eq!(mar4.throttle_active, Some(false));
        let feb26 = sched.batches().iter().find(|b| b.day == day::FEB_26).expect("Feb 26 batch");
        assert_eq!(feb26.throttle_active, Some(true));
        // No other day flips the QUIC filter.
        let flips = sched.batches().iter().filter(|b| b.quic_filter.is_some()).count();
        assert_eq!(flips, 1);
    }

    #[test]
    fn zero_removal_fraction_is_append_only() {
        let universe = Universe::generate(1);
        let config = ChurnConfig { removal_fraction: 0.0, ..ChurnConfig::escalation_2022() };
        let sched = ChurnSchedule::from_universe(&universe, &config);
        assert_eq!(sched.total_removes(), 0);
    }
}
