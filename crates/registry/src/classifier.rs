//! The LDA stand-in: synthesize keyword-bag "HTML" for a domain from its
//! latent category, and classify pages back into categories by keyword
//! scoring. This reproduces the *pipeline* of §6.1 (fetch → cluster →
//! label) with a deterministic, dependency-free classifier whose error
//! modes (failed fetches, unparseable pages, misclassification noise)
//! match the paper's exclusion counts.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::universe::{Category, Domain};

/// What "fetching" a domain from the US measurement machine yielded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchOutcome {
    /// A parseable HTML page.
    Html(String),
    /// TCP to the origin failed (dead domain, parked, firewalled).
    FailedTcp,
    /// Connected but the body was empty or unparseable (error pages,
    /// geoblocks, parking pages).
    BadHtml,
}

/// Simulates fetching `domain`'s front page. Outcome probabilities are
/// calibrated to Fig. 7's exclusions: 1,398/10,000 failed TCP and
/// 2,680/10,000 bad HTML for the registry sample.
pub fn fetch(domain: &Domain, seed: u64) -> FetchOutcome {
    let mut rng = SmallRng::seed_from_u64(seed ^ hash_name(&domain.name));
    match domain.list {
        crate::universe::ListKind::RegistrySample => {
            let roll: f64 = rng.gen();
            if roll < 0.1398 {
                FetchOutcome::FailedTcp
            } else if roll < 0.1398 + 0.2680 {
                FetchOutcome::BadHtml
            } else {
                FetchOutcome::Html(synthesize_html(domain, rng.gen()))
            }
        }
        crate::universe::ListKind::Tranco => {
            // Popular domains almost always resolve and serve content.
            if rng.gen_bool(0.02) {
                FetchOutcome::BadHtml
            } else {
                FetchOutcome::Html(synthesize_html(domain, rng.gen()))
            }
        }
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, good enough for deterministic per-domain seeds.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Synthesizes a page: mostly the domain's own category vocabulary with
/// some cross-category noise, wrapped in minimal HTML.
pub fn synthesize_html(domain: &Domain, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut words = Vec::new();
    for _ in 0..60 {
        let from_own = rng.gen_bool(0.75);
        let category = if from_own {
            domain.category
        } else {
            *Category::ALL.choose(&mut rng).unwrap()
        };
        words.push(*category.keywords().choose(&mut rng).unwrap());
    }
    let lang = if domain.russian { "ru" } else { "en" };
    format!(
        "<html lang=\"{lang}\"><head><title>{}</title></head><body><p>{}</p></body></html>",
        domain.name,
        words.join(" ")
    )
}

/// Classifies a page by keyword-count argmax — the topic-model stand-in.
/// Returns `None` for pages with no category vocabulary at all.
pub fn classify_html(html: &str) -> Option<Category> {
    let lowered = html.to_ascii_lowercase();
    let mut best: Option<(Category, usize)> = None;
    for category in Category::ALL {
        let score: usize = category
            .keywords()
            .iter()
            .map(|kw| lowered.matches(kw).count())
            .sum();
        if score > 0 && best.map(|(_, s)| score > s).unwrap_or(true) {
            best = Some((category, score));
        }
    }
    best.map(|(category, _)| category)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{ListKind, Universe};

    fn sample_domain(category: Category) -> Domain {
        Domain {
            name: format!("{}-test.example", category.name().to_ascii_lowercase()),
            category,
            list: ListKind::RegistrySample,
            registry_added_day: Some(10),
            russian: false,
        }
    }

    #[test]
    fn classifier_recovers_latent_category_mostly() {
        let mut correct = 0;
        let mut total = 0;
        for category in Category::ALL {
            let domain = sample_domain(category);
            for seed in 0..50u64 {
                let html = synthesize_html(&domain, seed);
                if classify_html(&html) == Some(category) {
                    correct += 1;
                }
                total += 1;
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy > 0.85, "accuracy {accuracy}");
    }

    #[test]
    fn classify_garbage_returns_none() {
        assert_eq!(classify_html("<html><body>zzz qqq</body></html>"), None);
        assert_eq!(classify_html(""), None);
    }

    #[test]
    fn fetch_outcome_rates_match_fig7_exclusions() {
        let universe = Universe::generate(5);
        let mut failed = 0;
        let mut bad = 0;
        for domain in &universe.registry_sample {
            match fetch(domain, 99) {
                FetchOutcome::FailedTcp => failed += 1,
                FetchOutcome::BadHtml => bad += 1,
                FetchOutcome::Html(_) => {}
            }
        }
        // Within sampling error of 1,398 and 2,680 per 10,000.
        assert!((1_250..=1_550).contains(&failed), "failed {failed}");
        assert!((2_500..=2_900).contains(&bad), "bad {bad}");
    }

    #[test]
    fn fetch_is_deterministic_per_domain() {
        let universe = Universe::generate(5);
        let d = &universe.registry_sample[42];
        assert_eq!(fetch(d, 7), fetch(d, 7));
    }

    #[test]
    fn html_carries_language() {
        let mut domain = sample_domain(Category::Gambling);
        domain.russian = true;
        assert!(synthesize_html(&domain, 1).contains("lang=\"ru\""));
    }
}
