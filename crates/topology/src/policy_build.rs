//! Builds the central TSPU policy from a generated domain universe.

use std::net::Ipv4Addr;

use tspu_core::{Policy, PolicyHandle, ThrottleConfig};
use tspu_registry::Universe;

/// The Tor entry node's address (Fig. 1's Paris data-center pair). Its IP
/// is "out-registry" blocked by the TSPU since December 2021 (§3).
pub const TOR_ENTRY_NODE: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

/// Additional out-registry blocked IPs the paper mentions (§5.2: "six
/// additional IPs … including IPs from VPN providers and Google services").
pub const EXTRA_BLOCKED_IPS: [Ipv4Addr; 6] = [
    Ipv4Addr::new(198, 51, 100, 21),
    Ipv4Addr::new(198, 51, 100, 22),
    Ipv4Addr::new(198, 51, 100, 23),
    Ipv4Addr::new(203, 0, 113, 188),
    Ipv4Addr::new(203, 0, 113, 189),
    Ipv4Addr::new(203, 0, 113, 190),
];

/// Builds the centrally distributed policy for a universe, with the given
/// epoch toggles (see `tspu_registry::PolicyTimeline`).
pub fn policy_from_universe(universe: &Universe, throttle_active: bool, quic_filter: bool) -> PolicyHandle {
    let mut policy = Policy::default();
    for name in &universe.blocks.sni_rst {
        policy.sni_rst.insert(name.clone());
    }
    for name in &universe.blocks.sni_slow {
        policy.sni_slow.insert(name.clone());
    }
    for name in &universe.blocks.sni_throttle {
        policy.sni_throttle.insert(name.clone());
    }
    for name in &universe.blocks.sni_backup {
        policy.sni_backup.insert(name.clone());
    }
    policy.blocked_ips.insert(TOR_ENTRY_NODE);
    for addr in EXTRA_BLOCKED_IPS {
        policy.blocked_ips.insert(addr);
    }
    policy.quic_filter = quic_filter;
    policy.throttle_active = throttle_active;
    policy.throttle = ThrottleConfig::hard_2022();
    PolicyHandle::new(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_mirrors_universe() {
        let universe = Universe::generate(1);
        let handle = policy_from_universe(&universe, false, true);
        let policy = handle.read();
        assert!(policy.sni_rst.matches("twitter.com"));
        assert!(policy.sni_slow.matches("play.google.com"));
        assert!(policy.blocked_ips.contains(&TOR_ENTRY_NODE));
        assert_eq!(policy.blocked_ips.len(), 7);
        assert!(policy.quic_filter);
        assert!(!policy.throttle_active);
        assert!(policy.sni_rst.len() >= 9_899);
    }
}
