//! A country-scale synthetic RuNet for the remote-measurement experiments
//! (§7.2–§7.3, Tables 4 & 5, Figs. 9–12).
//!
//! ## What is modeled, and why it reproduces the paper's shape
//!
//! * **ASes** come in five kinds. Residential ISPs hold most endpoints and
//!   get *symmetric* TSPU devices close to their leaves (Roskomnadzor's
//!   guideline, §7.1); small ISPs may instead route through a transit
//!   provider that filters for them with *upstream-only* devices
//!   ("censorship-as-a-service", §7.1.1, Fig. 11); datacenters are exempt
//!   (§3: "all data center VPSes we rent show little to no censorship").
//! * **Port profiles** correlate with network kind: TR-069 (7547) and
//!   8080/58000 belong to residential CPE, 80/443/22 to servers — which is
//!   the entire mechanism behind Fig. 9's per-port positivity differences.
//! * **Device placement depth** is drawn from a leaf-heavy distribution
//!   (≈ 69 % within two hops of the endpoint, Fig. 12), and endpoints in
//!   one cluster share one device and one "TSPU link" (the paper found
//!   6,871 unique links for > 1 M positive endpoints).
//! * **Scale**: the paper scans 4,005,138 endpoints. The generator scales
//!   endpoint counts by `config.scale` (AS counts stay real), and
//!   experiments report raw + scale-corrected numbers.
//!
//! Ground truth (who is actually behind which device, at which hop) is
//! recorded on every [`Endpoint`] so measurements can be scored.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tspu_core::{FailureProfile, PolicyHandle, TspuDevice};
use tspu_netsim::{Direction, HostId, MiddleboxHandle, MiddleboxId, Network, Route, RouteStep};
use tspu_registry::Universe;
use tspu_stack::server::ReassemblingApp;
use tspu_stack::{PortBehavior, ServerApp, ServerPort};

use crate::policy_build::{policy_from_universe, TOR_ENTRY_NODE};

/// Network kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsKind {
    /// Consumer ISP: CPE-heavy, symmetric TSPU near the leaves.
    Residential,
    /// Small regional ISP, often filtered by its upstream provider.
    SmallIsp,
    /// Transit provider; hosts upstream-only devices for customers.
    Transit,
    /// Hosting/datacenter — exempt from TSPU.
    Datacenter,
    /// Backbone — few endpoints, no TSPU.
    Backbone,
}

/// TSPU coverage of an AS's endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// No device on any path.
    None,
    /// Symmetric device(s) inside the AS, near the leaves.
    Symmetric,
    /// The upstream provider's device sees only outbound traffic.
    UpstreamOnly,
    /// The upstream provider filters symmetrically at the transit ingress
    /// ("censorship-as-a-service", Fig. 11: TSPU links inside Rostelecom
    /// carrying small Tyumen ISPs).
    ProviderSymmetric,
}

/// Nmap-style device labels (§4's target-selection filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceLabel {
    Router,
    Switch,
    EndUser,
}

/// One autonomous system.
#[derive(Debug, Clone)]
pub struct AsInfo {
    pub asn: u32,
    pub kind: AsKind,
    pub coverage: Coverage,
    pub endpoint_count: usize,
}

/// One scanned endpoint with ground truth.
#[derive(Debug, Clone)]
pub struct Endpoint {
    pub host: HostId,
    pub addr: Ipv4Addr,
    pub asn: u32,
    pub port: u16,
    pub label: DeviceLabel,
    /// True when a symmetric device sits on the scanner→endpoint path.
    pub behind_symmetric: bool,
    /// True when an upstream-only device covers this endpoint's outbound.
    pub behind_upstream_only: bool,
    /// Ground truth hops between the symmetric device and the endpoint.
    pub device_hops: Option<usize>,
    /// Ground truth (hop-before, hop-after) of the symmetric device.
    pub tspu_link: Option<(Ipv4Addr, Ipv4Addr)>,
    /// Whether the endpoint has TCP port 7 open (echo population).
    pub is_echo: bool,
    /// The endpoint (and its TSPU) sit behind a CG-NAT: unreachable to
    /// unsolicited probes, so remote scans cannot count its device.
    pub behind_nat: bool,
}

/// Where censorship devices sit in the topology — the architectural
/// comparison of §9: "In contrast to the Great Firewall of China (GFW)
/// that took decades to build and deploy at choke points in the nation's
/// internet topology, … Russia achieved building a nation-scale
/// censorship architecture deployed in decentralized networks."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementModel {
    /// The TSPU way: many devices near residential leaves, datacenters
    /// exempt, transit providers filtering for small customers.
    #[default]
    LeafTspu,
    /// The GFW way: a handful of devices on the border/backbone choke
    /// points; every international flow crosses one.
    ChokePointGfw,
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunetConfig {
    pub seed: u64,
    /// Endpoint scale relative to the paper's 4,005,138.
    pub scale: f64,
    /// Number of ASes to generate.
    pub num_ases: usize,
    /// Per-device failure probability for the scan-visible mechanisms.
    pub device_failure: f64,
    /// Endpoints per TSPU device/link cluster.
    pub cluster_size: usize,
    /// Probability that an infrastructure endpoint in a small-ISP or
    /// transit network has the echo service (TCP port 7) enabled.
    pub echo_rate: f64,
    /// Device placement architecture.
    pub placement: PlacementModel,
    /// Fraction of covered residential clusters whose TSPU sits *behind*
    /// a CG-NAT (Roskomnadzor's recommended spot, §7.1) — invisible to
    /// the remote fragmentation scan (§7.3's lower-bound caveat).
    pub nat_fraction: f64,
}

impl Default for RunetConfig {
    fn default() -> RunetConfig {
        RunetConfig {
            seed: 2022,
            scale: 0.01,
            num_ases: 4_986,
            device_failure: 0.002,
            cluster_size: 40,
            echo_rate: 0.06,
            placement: PlacementModel::LeafTspu,
            nat_fraction: 0.25,
        }
    }
}

impl RunetConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> RunetConfig {
        RunetConfig {
            seed,
            scale: 0.002,
            num_ases: 160,
            device_failure: 0.0,
            cluster_size: 8,
            echo_rate: 0.35,
            placement: PlacementModel::LeafTspu,
            nat_fraction: 0.25,
        }
    }
}

/// The generated country.
pub struct Runet {
    pub net: Network,
    pub policy: PolicyHandle,
    pub config: RunetConfig,
    pub ases: Vec<AsInfo>,
    pub endpoints: Vec<Endpoint>,
    /// Paris-like measurement machine (outside Russia).
    pub scanner: HostId,
    pub scanner_addr: Ipv4Addr,
    /// The IP-blocked Tor entry node (same data center as the scanner).
    pub tor: HostId,
    pub tor_addr: Ipv4Addr,
    /// All TSPU devices, for stats (borrow through `net.middlebox`).
    pub devices: Vec<MiddleboxHandle<TspuDevice>>,
    /// Which AS owns each router hop address (Fig. 11's view).
    pub hop_owner: HashMap<Ipv4Addr, u32>,
}

/// The paper's top-10 scanned ports (Fig. 9's x-axis).
pub const TOP_PORTS: [u16; 10] = [21, 22, 80, 443, 445, 1723, 3389, 7547, 8080, 58000];

/// Port weights per AS kind: (port, weight). The correlation between port
/// and network type is the causal driver of Fig. 9.
fn port_weights(kind: AsKind) -> &'static [(u16, u32)] {
    match kind {
        AsKind::Residential => &[
            (7547, 42), (8080, 14), (58000, 12), (80, 8), (443, 6), (1723, 5),
            (445, 4), (3389, 4), (21, 3), (22, 2),
        ],
        AsKind::SmallIsp => &[
            (7547, 18), (8080, 12), (80, 16), (443, 14), (22, 10), (21, 8),
            (1723, 8), (3389, 6), (445, 5), (58000, 3),
        ],
        AsKind::Transit => &[(22, 30), (21, 20), (80, 20), (443, 15), (8080, 10), (3389, 5)],
        AsKind::Datacenter => &[(80, 30), (443, 30), (22, 20), (21, 8), (3389, 7), (8080, 5)],
        AsKind::Backbone => &[(22, 50), (21, 30), (80, 20)],
    }
}

fn pick_port(rng: &mut SmallRng, kind: AsKind) -> u16 {
    let weights = port_weights(kind);
    let total: u32 = weights.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (port, weight) in weights {
        if roll < *weight {
            return *port;
        }
        roll -= weight;
    }
    weights[0].0
}

/// Fig. 12's ground-truth placement depth distribution (hops between
/// device and endpoint): ~69 % within the first two hops.
fn pick_device_hops(rng: &mut SmallRng) -> usize {
    let roll: f64 = rng.gen();
    match roll {
        r if r < 0.36 => 1,
        r if r < 0.69 => 2,
        r if r < 0.81 => 3,
        r if r < 0.88 => 4,
        r if r < 0.92 => 5,
        r if r < 0.95 => 6,
        r if r < 0.97 => 7,
        r if r < 0.985 => 8,
        r if r < 0.995 => 9,
        _ => 10,
    }
}

fn pick_label(rng: &mut SmallRng, kind: AsKind, port: u16) -> DeviceLabel {
    let infra_prob = match kind {
        AsKind::Transit | AsKind::Backbone => 0.9,
        AsKind::Datacenter => 0.5,
        AsKind::SmallIsp => 0.5,
        AsKind::Residential => {
            if port == 7547 || port == 58000 {
                0.25 // CPE devices are mostly end-user gear
            } else {
                0.4
            }
        }
    };
    if rng.gen_bool(infra_prob) {
        if rng.gen_bool(0.6) {
            DeviceLabel::Router
        } else {
            DeviceLabel::Switch
        }
    } else {
        DeviceLabel::EndUser
    }
}

impl Runet {
    /// Generates the country deterministically.
    pub fn generate(universe: &Universe, config: RunetConfig) -> Runet {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let policy = policy_from_universe(universe, false, true);
        let mut net = Network::with_default_latency();
        net.set_capture(false); // country-scale scans must not hold captures

        let scanner_addr = Ipv4Addr::new(198, 51, 100, 8);
        let scanner = net.add_host(scanner_addr);
        let tor = net.add_host(TOR_ENTRY_NODE);
        // Scanner and Tor node share a data center (§3): direct link.
        net.set_route_symmetric(scanner, tor, Route::direct());

        // --- AS population ---
        let mut ases = Vec::with_capacity(config.num_ases);
        for i in 0..config.num_ases {
            let asn = 10_000 + i as u32;
            let kind = match rng.gen_range(0..100) {
                0..=27 => AsKind::Residential,
                28..=67 => AsKind::SmallIsp,
                68..=77 => AsKind::Transit,
                78..=92 => AsKind::Datacenter,
                _ => AsKind::Backbone,
            };
            // Heavy-tailed endpoint counts (full-scale terms), largest for
            // residential ISPs.
            let base: f64 = match kind {
                AsKind::Residential => 10f64.powf(rng.gen_range(2.8..4.4)),
                AsKind::SmallIsp => 10f64.powf(rng.gen_range(1.8..3.4)),
                AsKind::Transit => 10f64.powf(rng.gen_range(1.5..2.8)),
                AsKind::Datacenter => 10f64.powf(rng.gen_range(2.9..4.5)),
                AsKind::Backbone => 10f64.powf(rng.gen_range(1.0..2.0)),
            };
            let endpoint_count = ((base * config.scale).round() as usize).max(1);
            // Coverage: mid-to-large residential ISPs get symmetric
            // devices; a slice of small ISPs is covered upstream-only by
            // their transit provider; datacenters/backbone are exempt.
            let coverage = match kind {
                AsKind::Residential if base > 900.0 && rng.gen_bool(0.72) => Coverage::Symmetric,
                AsKind::Residential if rng.gen_bool(0.18) => Coverage::Symmetric,
                AsKind::SmallIsp if rng.gen_bool(0.18) => Coverage::UpstreamOnly,
                AsKind::SmallIsp if rng.gen_bool(0.10) => Coverage::ProviderSymmetric,
                AsKind::Transit if rng.gen_bool(0.15) => Coverage::UpstreamOnly,
                _ => Coverage::None,
            };
            ases.push(AsInfo { asn, kind, coverage, endpoint_count });
        }

        // --- Core hops shared by all routes ---
        let core_hops = [
            Ipv4Addr::new(198, 51, 100, 1),  // Paris gateway
            Ipv4Addr::new(185, 1, 0, 1),     // EU exchange
            Ipv4Addr::new(188, 128, 0, 1),   // RU border (Rostelecom)
            Ipv4Addr::new(188, 128, 0, 2),   // RU backbone
        ];

        let mut endpoints = Vec::new();
        let mut devices: Vec<MiddleboxHandle<TspuDevice>> = Vec::new();
        let mut hop_owner: HashMap<Ipv4Addr, u32> = HashMap::new();
        for (i, &hop) in core_hops.iter().enumerate() {
            hop_owner.insert(hop, if i < 2 { 0 } else { 12_389 });
        }

        let mut addr_counter: u32 = 0; // cluster /24 allocator in 5.0.0.0/8
        let mut hop_counter: u32 = 0; // router addresses in 100.64.0.0/10
        let mut alloc_hop = |owner: u32, hop_owner: &mut HashMap<Ipv4Addr, u32>| {
            let addr = Ipv4Addr::from(0x6440_0000u32 + hop_counter);
            hop_counter += 1;
            hop_owner.insert(addr, owner);
            addr
        };

        // Upstream-only devices: one per covering transit provider slice.
        // Small ISPs with CaaS coverage share a provider device.
        let mut caas_device: Option<MiddleboxHandle<TspuDevice>> = None;

        // Choke-point architecture: a couple of border boxes carry the
        // whole country; nothing sits in the access networks.
        let choke_devices: Vec<MiddleboxId> = if config.placement == PlacementModel::ChokePointGfw {
            (0..2)
                .map(|i| {
                    let handle = net.install_middlebox(TspuDevice::new(
                        &format!("gfw-border-{i}"),
                        policy.clone(),
                        FailureProfile::uniform(config.device_failure),
                        config.seed ^ 0x9f0f ^ i,
                    ));
                    devices.push(handle);
                    handle.id()
                })
                .collect()
        } else {
            Vec::new()
        };

        for as_info in &ases {
            let asn = as_info.asn;
            // Per-AS ingress hops (used by every endpoint in the AS).
            let transit_owner = if as_info.kind == AsKind::SmallIsp { 12_389 } else { asn };
            let ingress_a = alloc_hop(transit_owner, &mut hop_owner);
            let ingress_b = alloc_hop(asn, &mut hop_owner);

            // Echo service (TCP port 7) clusters per network: only some
            // small-ISP/transit operators leave it enabled, which is what
            // concentrates Table 4's funnel into few ASes.
            let as_has_echo =
                matches!(as_info.kind, AsKind::SmallIsp | AsKind::Transit) && rng.gen_bool(0.30);

            // Provider-symmetric coverage: one device per covered AS,
            // sitting on the transit ingress link (owned by the provider).
            let provider_sym = if as_info.coverage == Coverage::ProviderSymmetric
                && config.placement == PlacementModel::LeafTspu
            {
                let handle = net.install_middlebox(TspuDevice::new(
                    &format!("tspu-provider-as{asn}"),
                    policy.clone(),
                    FailureProfile::uniform(config.device_failure),
                    config.seed ^ (u64::from(asn) << 8),
                ));
                devices.push(handle);
                Some(handle.id())
            } else {
                None
            };

            // Cluster endpoints over shared leaf infrastructure.
            let mut produced = 0;
            while produced < as_info.endpoint_count {
                let in_cluster = config.cluster_size.min(as_info.endpoint_count - produced).max(1);
                let cluster_base = 0x0500_0000u32 + (addr_counter << 8);
                addr_counter += 1;

                // Cluster-covered?
                let covered = config.placement == PlacementModel::LeafTspu
                    && match as_info.coverage {
                        Coverage::Symmetric => rng.gen_bool(0.64),
                        _ => false,
                    };
                let provider_covered =
                    provider_sym.is_some() && config.placement == PlacementModel::LeafTspu;
                let device_hops = if covered { pick_device_hops(&mut rng) } else { 0 };
                // Roskomnadzor's letter recommends installing before
                // CG-NAT (subscriber side); such devices are invisible to
                // the remote scan (§7.3).
                let behind_nat = covered
                    && as_info.kind == AsKind::Residential
                    && rng.gen_bool(config.nat_fraction);
                // Leaf chain long enough to put the device device_hops
                // from the endpoint: internal hops count (after ingress).
                let leaf_len = device_hops.max(1) + 1;
                let leaf_hops: Vec<Ipv4Addr> =
                    (0..leaf_len).map(|_| alloc_hop(asn, &mut hop_owner)).collect();

                // Device for this cluster.
                let (device_id, tspu_link) = if covered {
                    let handle = net.install_middlebox(TspuDevice::new(
                        &format!("tspu-as{asn}-c{addr_counter}"),
                        policy.clone(),
                        FailureProfile::uniform(config.device_failure),
                        config.seed ^ u64::from(addr_counter),
                    ));
                    devices.push(handle);
                    let id = handle.id();
                    // Place the device so that `device_hops` counts the
                    // hops from the device's link to the destination: with
                    // device_hops = 1 the device sits on the very last
                    // link before the endpoint.
                    let dev_idx = leaf_hops.len() - device_hops;
                    let before = leaf_hops[dev_idx];
                    let after = leaf_hops.get(dev_idx + 1).copied();
                    (Some((id, dev_idx)), Some((before, after.unwrap_or(before))))
                } else {
                    (None, None)
                };

                // The cluster's CG-NAT, when present, sits on the same
                // link as the device, on the scanner side.
                let nat_id = if behind_nat {
                    let public = Ipv4Addr::from(0x0512_0000u32 + addr_counter);
                    Some(net.add_middlebox(Box::new(tspu_netsim::nat::Cgnat::new(public))))
                } else {
                    None
                };

                // Upstream-only coverage: shared provider device.
                let upstream_id = if as_info.coverage == Coverage::UpstreamOnly
                    && config.placement == PlacementModel::LeafTspu
                {
                    let handle = *caas_device.get_or_insert_with(|| {
                        let handle = net.install_middlebox(TspuDevice::new(
                            "tspu-transit-caas",
                            policy.clone(),
                            FailureProfile::uniform(config.device_failure),
                            config.seed ^ 0xca45,
                        ));
                        devices.push(handle);
                        handle
                    });
                    Some(handle.id())
                } else {
                    None
                };

                for j in 0..in_cluster {
                    let addr = Ipv4Addr::from(cluster_base + 2 + j as u32);
                    let port = pick_port(&mut rng, as_info.kind);
                    let label = pick_label(&mut rng, as_info.kind, port);
                    // Echo servers: any device class can run the service;
                    // the §4 nmap filter later keeps only routers/switches.
                    let is_echo = as_has_echo && rng.gen_bool((config.echo_rate * 3.0).min(0.9));

                    let mut server = ServerApp::new(addr)
                        .with_port(ServerPort::new(port, PortBehavior::Sink));
                    if is_echo {
                        server = server.with_port(ServerPort::new(7, PortBehavior::Echo));
                    }
                    let host = net.add_host_with_app(addr, Box::new(ReassemblingApp::new(server)));

                    // Forward route: scanner → endpoint.
                    let mut forward: Vec<RouteStep> = core_hops
                        .iter()
                        .map(|&h| RouteStep::router(h))
                        .collect();
                    if let Some(&choke) = choke_devices.first() {
                        // The border box (after the RU border router).
                        forward[2].devices.push((choke, Direction::RemoteToLocal));
                    }
                    let mut ingress_a_step = RouteStep::router(ingress_a);
                    if config.placement == PlacementModel::LeafTspu {
                        if let Some(id) = provider_sym {
                            ingress_a_step.devices.push((id, Direction::RemoteToLocal));
                        }
                    }
                    forward.push(ingress_a_step);
                    forward.push(RouteStep::router(ingress_b));
                    for (k, &hop) in leaf_hops.iter().enumerate() {
                        let mut step = RouteStep::router(hop);
                        if let Some((id, dev_idx)) = device_id {
                            if k == dev_idx {
                                // Inbound order: NAT first (scanner side),
                                // then the TSPU behind it.
                                if let Some(nat) = nat_id {
                                    step.devices.push((nat, Direction::RemoteToLocal));
                                }
                                step.devices.push((id, Direction::RemoteToLocal));
                            }
                        }
                        forward.push(step);
                    }

                    // Reverse route: endpoint → scanner (and → Tor).
                    let mut reverse: Vec<RouteStep> = Vec::new();
                    for (k, &hop) in leaf_hops.iter().enumerate().rev() {
                        let mut step = RouteStep::router(hop);
                        if let Some((id, dev_idx)) = device_id {
                            if k == dev_idx {
                                // Outbound order: TSPU first, then NAT.
                                step.devices.push((id, Direction::LocalToRemote));
                                if let Some(nat) = nat_id {
                                    step.devices.push((nat, Direction::LocalToRemote));
                                }
                            }
                        }
                        reverse.push(step);
                    }
                    reverse.push(RouteStep::router(ingress_b));
                    let mut transit_step = RouteStep::router(ingress_a);
                    if let Some(up_id) = upstream_id {
                        // The provider's device on the transit link sees
                        // outbound traffic only.
                        transit_step.devices.push((up_id, Direction::LocalToRemote));
                    }
                    if let Some(id) = provider_sym {
                        transit_step.devices.push((id, Direction::LocalToRemote));
                    }
                    reverse.push(transit_step);
                    for (ci, &h) in core_hops.iter().enumerate().rev() {
                        let mut step = RouteStep::router(h);
                        if ci == 2 {
                            if let Some(&choke) = choke_devices.get(1) {
                                step.devices.push((choke, Direction::LocalToRemote));
                            }
                        }
                        reverse.push(step);
                    }

                    for &(probe_src, fwd_needed) in &[(scanner, true), (tor, true)] {
                        if fwd_needed {
                            net.set_route(probe_src, host, Route { steps: forward.clone() });
                            net.set_route(host, probe_src, Route { steps: reverse.clone() });
                        }
                    }

                    let (behind_symmetric, truth_hops, truth_link) = if config.placement
                        == PlacementModel::ChokePointGfw
                    {
                        // Everything crosses the border box; its distance
                        // from the endpoint is nearly the whole path.
                        let hops_away = 2 + 1 + leaf_hops.len() + 2;
                        (true, Some(hops_away), Some((core_hops[2], core_hops[3])))
                    } else if covered {
                        (true, Some(device_hops), tspu_link)
                    } else if provider_covered {
                        // The provider's ingress device is leaf_len + 2
                        // hops from the destination (ingress_b + leaf
                        // chain + delivery).
                        (true, Some(leaf_hops.len() + 2), Some((ingress_a, ingress_b)))
                    } else {
                        (false, None, None)
                    };
                    endpoints.push(Endpoint {
                        host,
                        addr,
                        asn,
                        port,
                        label,
                        behind_symmetric,
                        behind_upstream_only: upstream_id.is_some(),
                        device_hops: truth_hops,
                        tspu_link: truth_link,
                        is_echo,
                        behind_nat,
                    });
                    produced += 1;
                }
            }
        }

        Runet {
            net,
            policy,
            config,
            ases,
            endpoints,
            scanner,
            scanner_addr,
            tor,
            tor_addr: TOR_ENTRY_NODE,
            devices,
            hop_owner,
        }
    }

    /// Endpoints with a given port open.
    pub fn endpoints_with_port(&self, port: u16) -> impl Iterator<Item = &Endpoint> {
        self.endpoints.iter().filter(move |e| e.port == port)
    }

    /// The echo-server population (TCP port 7 open).
    pub fn echo_servers(&self) -> impl Iterator<Item = &Endpoint> {
        self.endpoints.iter().filter(|e| e.is_echo)
    }

    /// Ground-truth fraction of endpoints behind a symmetric device.
    pub fn ground_truth_positive_fraction(&self) -> f64 {
        let positive = self.endpoints.iter().filter(|e| e.behind_symmetric).count();
        positive as f64 / self.endpoints.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runet() -> Runet {
        let universe = Universe::generate(5);
        Runet::generate(&universe, RunetConfig::tiny(9))
    }

    #[test]
    fn generation_shapes() {
        let r = runet();
        assert_eq!(r.ases.len(), 160);
        assert!(r.endpoints.len() > 300, "endpoints {}", r.endpoints.len());
        // Aggregate positivity in the ballpark of the paper's 25.31 %.
        let frac = r.ground_truth_positive_fraction();
        assert!((0.10..=0.45).contains(&frac), "positive fraction {frac}");
    }

    #[test]
    fn residential_ports_dominate_positive_endpoints() {
        let r = runet();
        let rate = |port: u16| {
            let all: Vec<_> = r.endpoints_with_port(port).collect();
            if all.is_empty() {
                return 0.0;
            }
            all.iter().filter(|e| e.behind_symmetric).count() as f64 / all.len() as f64
        };
        let cpe = rate(7547);
        let web = rate(80).max(rate(443));
        assert!(cpe > web, "7547 rate {cpe} vs web {web}");
    }

    #[test]
    fn datacenters_never_covered() {
        let r = runet();
        for as_info in r.ases.iter().filter(|a| a.kind == AsKind::Datacenter) {
            assert_eq!(as_info.coverage, Coverage::None);
        }
        let dc_asns: Vec<u32> = r
            .ases
            .iter()
            .filter(|a| a.kind == AsKind::Datacenter)
            .map(|a| a.asn)
            .collect();
        assert!(r
            .endpoints
            .iter()
            .filter(|e| dc_asns.contains(&e.asn))
            .all(|e| !e.behind_symmetric && !e.behind_upstream_only));
    }

    #[test]
    fn covered_endpoints_have_ground_truth_link() {
        let r = runet();
        for e in r.endpoints.iter().filter(|e| e.behind_symmetric) {
            assert!(e.device_hops.is_some());
            assert!(e.tspu_link.is_some());
        }
        // ~69 % of *leaf-placed* devices within two hops (provider-hosted
        // devices in transit ASes are deliberately deeper; at country
        // scale the residential mass dominates the Fig. 12 histogram).
        let leaf_asns: Vec<u32> = r
            .ases
            .iter()
            .filter(|a| a.coverage == Coverage::Symmetric)
            .map(|a| a.asn)
            .collect();
        let leaf_hops: Vec<usize> = r
            .endpoints
            .iter()
            .filter(|e| leaf_asns.contains(&e.asn))
            .filter_map(|e| e.device_hops)
            .collect();
        let close = leaf_hops.iter().filter(|&&h| h <= 2).count();
        let frac = close as f64 / leaf_hops.len().max(1) as f64;
        assert!((0.55..=0.85).contains(&frac), "close fraction {frac}");
    }

    #[test]
    fn scan_packet_reaches_endpoint_and_returns() {
        let mut r = runet();
        let endpoint = r.endpoints.iter().find(|e| !e.behind_symmetric).cloned().unwrap();
        assert!(!endpoint.behind_nat);
        let syn = tspu_stack::craft::TcpPacketSpec::new(
            r.scanner_addr, 50000, endpoint.addr, endpoint.port, tspu_wire::tcp::TcpFlags::SYN,
        )
        .build();
        r.net.send_from(r.scanner, syn);
        r.net.run_until_idle();
        let inbox = r.net.take_inbox(r.scanner);
        assert_eq!(inbox.len(), 1, "SYN/ACK comes back");
    }

    #[test]
    fn echo_population_is_concentrated() {
        let r = runet();
        let echoes: Vec<_> = r.echo_servers().collect();
        assert!(!echoes.is_empty());
        // Echo service clusters in a minority of ASes…
        let echo_ases: std::collections::HashSet<u32> = echoes.iter().map(|e| e.asn).collect();
        let eligible = r
            .ases
            .iter()
            .filter(|a| matches!(a.kind, AsKind::SmallIsp | AsKind::Transit))
            .count();
        assert!(echo_ases.len() < eligible / 2, "{} of {}", echo_ases.len(), eligible);
        // …and includes end-user devices the §4 filter will drop.
        assert!(echoes.iter().any(|e| e.label == DeviceLabel::EndUser));
    }

    #[test]
    fn nat_hides_covered_endpoints_from_probes() {
        let mut r = runet();
        let Some(hidden) = r
            .endpoints
            .iter()
            .find(|e| e.behind_symmetric && e.behind_nat)
            .cloned()
        else {
            panic!("tiny runet produced no NAT'd covered cluster");
        };
        // An unsolicited probe never reaches the endpoint: the scan
        // cannot count this cluster's device (§7.3's lower bound).
        let syn = tspu_stack::craft::TcpPacketSpec::new(
            r.scanner_addr, 61_000, hidden.addr, hidden.port, tspu_wire::tcp::TcpFlags::SYN,
        )
        .build();
        r.net.send_from(r.scanner, syn);
        r.net.run_until_idle();
        assert!(r.net.take_inbox(r.scanner).is_empty());
        // But the endpoint's own outbound traffic still crosses its TSPU
        // and comes back translated: users behind NAT are censored even
        // though scans cannot see their device.
        let out = tspu_stack::craft::TcpPacketSpec::new(
            hidden.addr, 40_000, r.scanner_addr, 443, tspu_wire::tcp::TcpFlags::SYN,
        )
        .build();
        r.net.send_from(hidden.host, out);
        r.net.run_until_idle();
        let arrived = r.net.take_inbox(r.scanner);
        assert_eq!(arrived.len(), 1, "outbound SYN crosses NAT");
        let view = tspu_wire::ipv4::Ipv4Packet::new_checked(&arrived[0].1[..]).unwrap();
        assert_ne!(view.src_addr(), hidden.addr, "source was translated");
    }

    #[test]
    fn choke_point_placement_flips_the_architecture() {
        let universe = Universe::generate(5);
        let config = RunetConfig { placement: PlacementModel::ChokePointGfw, ..RunetConfig::tiny(9) };
        let r = Runet::generate(&universe, config);
        // Two border boxes carry everything.
        assert_eq!(r.devices.len(), 2);
        // Every endpoint is covered, including datacenters…
        assert!(r.endpoints.iter().all(|e| e.behind_symmetric));
        // …and the device is far from the leaves (the anti-Fig. 12).
        assert!(r.endpoints.iter().all(|e| e.device_hops.unwrap() >= 5));
        // Whereas the TSPU placement needs an order of magnitude more
        // boxes for partial coverage, close to leaves. (Relative bound:
        // the absolute count depends on the RNG draws of the generator.)
        let tspu = Runet::generate(&universe, RunetConfig::tiny(9));
        assert!(
            tspu.devices.len() > 10 * r.devices.len(),
            "{} devices vs {} choke-point boxes",
            tspu.devices.len(),
            r.devices.len()
        );
    }

    #[test]
    fn deterministic() {
        let universe = Universe::generate(5);
        let a = Runet::generate(&universe, RunetConfig::tiny(9));
        let b = Runet::generate(&universe, RunetConfig::tiny(9));
        assert_eq!(a.endpoints.len(), b.endpoints.len());
        assert_eq!(a.endpoints[10].addr, b.endpoints[10].addr);
        assert_eq!(a.endpoints[10].behind_symmetric, b.endpoints[10].behind_symmetric);
    }
}
