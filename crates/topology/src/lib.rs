//! # tspu-topology
//!
//! Synthetic network topologies for the reproduction:
//!
//! * [`lab`] — the paper's measurement setup (Fig. 1): three residential
//!   vantage points (Rostelecom, ER-Telecom, OBIT) with TSPU devices
//!   placed as §5.2.1/§7.1 found them (symmetric near the user; extra
//!   upstream-only devices on Rostelecom and OBIT paths), two US
//!   measurement machines, and the Paris machine / Tor entry node pair.
//! * [`runet`] — a country-scale synthetic RuNet: thousands of ASes typed
//!   residential / transit / small ISP / datacenter / backbone, endpoint
//!   populations with port-open profiles per network type, symmetric TSPU
//!   devices near residential leaves, upstream-only devices in transit
//!   providers ("censorship-as-a-service", §7.1.1), and ground-truth
//!   labels for every endpoint so measurements can be scored.
//! * [`gen`] — seeded AS-graph generation behind [`gen::TopologySpec`]:
//!   the same [`LabBuilder`] grows parameterized graphs (100–5000 ASes,
//!   preferential-attachment leaves under transit cores, devices placed
//!   by policy) with a deterministic route-churn schedule, the substrate
//!   for tomography-based censorship localization.
//! * [`policy_build`] — turning a `tspu-registry` universe into the
//!   central `tspu-core` policy.

pub mod gen;
pub mod lab;
pub mod policy_build;
pub mod runet;

pub use gen::{
    ChurnEvent, GenClient, GenDevice, GenParams, GenTopology, Placement, RouteVariant,
    TopologySpec,
};
pub use lab::{LabBuilder, LabImage, Vantage, VantageLab};
pub use policy_build::{policy_from_universe, TOR_ENTRY_NODE};
pub use runet::{AsInfo, AsKind, Coverage, Endpoint, PlacementModel, Runet, RunetConfig};
