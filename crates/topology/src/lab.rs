//! The paper's measurement setup (Fig. 1), reproduced as a simulator
//! topology: three residential vantage points inside Rostelecom,
//! ER-Telecom, and OBIT; two US measurement machines in one network; a
//! Paris measurement machine sharing a data center with a (no longer
//! operating, still IP-blocked) Tor entry node.
//!
//! TSPU placement follows §5.2.1 and §7.1:
//!
//! * every vantage has a *symmetric* device within its first three hops;
//! * Rostelecom additionally has an *upstream-only* device one hop behind
//!   the symmetric one (same AS);
//! * OBIT's paths cross an *upstream-only* device at the first link of
//!   the transit ISP — Rostelecom transit toward the US, RasCom transit
//!   toward France (destination-dependent, thanks to asymmetric routing);
//! * ER-Telecom has a single symmetric device (which is why Table 1 shows
//!   it failing more often).

use std::net::Ipv4Addr;

use tspu_core::chaos::{audit_for_profile, restart_times};
use tspu_core::{CensorProfile, FailureProfile, PolicyHandle, TspuDevice};
use tspu_ispdpi::IspResolver;
use tspu_netsim::fault::{ChaosLink, FaultPlan};
use tspu_netsim::oracle::OracleSpec;
use tspu_netsim::{Direction, MiddleboxId, Network, Route, RouteStep};
use tspu_netsim::{HostId, MiddleboxHandle};
use tspu_obs::Snapshot;
use tspu_registry::{stats, Universe};

use crate::gen::{GenTopology, TopologySpec};
use crate::policy_build::{policy_from_universe, TOR_ENTRY_NODE};

/// One in-country vantage point.
#[derive(Clone)]
pub struct Vantage {
    pub name: &'static str,
    pub city: &'static str,
    pub host: HostId,
    pub addr: Ipv4Addr,
    /// The symmetric device on this vantage's paths. Borrow it through
    /// `lab.net.middlebox(handle)` / `middlebox_mut(handle)`.
    pub sym_device: MiddleboxHandle<TspuDevice>,
    /// Upstream-only devices on this vantage's paths (0–2).
    pub upstream_devices: Vec<MiddleboxHandle<TspuDevice>>,
    /// Hop index (1-based, from the vantage) of the symmetric device:
    /// the device sits between hop `sym_hop` and `sym_hop + 1`.
    pub sym_hop: usize,
}

/// The full Fig. 1 lab.
pub struct VantageLab {
    pub net: Network,
    pub policy: PolicyHandle,
    pub vantages: Vec<Vantage>,
    /// Primary US measurement machine.
    pub us_main: HostId,
    pub us_main_addr: Ipv4Addr,
    /// Second US machine, same network.
    pub us_second: HostId,
    pub us_second_addr: Ipv4Addr,
    /// Paris measurement machine (same data center as the Tor node).
    pub paris: HostId,
    pub paris_addr: Ipv4Addr,
    /// The Tor entry node whose IP is out-registry blocked.
    pub tor: HostId,
    pub tor_addr: Ipv4Addr,
    /// The per-ISP censoring resolvers (the decentralized baseline).
    pub resolvers: Vec<IspResolver>,
    /// Chaos links installed by [`VantageLab::apply_fault_plan`], labeled
    /// `"<vantage>-fwd"` / `"<vantage>-rev"`, for per-link fault stats.
    pub chaos_links: Vec<(String, MiddleboxHandle<ChaosLink>)>,
    /// Ground truth of a generated topology
    /// ([`TopologySpec::Generated`]): clients with both provider paths,
    /// placed devices, churn schedule. `None` on the Fig. 1 lab. Shared
    /// by `Arc` into every image fork, like the route arena.
    pub gen: Option<std::sync::Arc<GenTopology>>,
}

/// Addresses of the fixed endpoints.
pub const ROSTELECOM_VANTAGE: Ipv4Addr = Ipv4Addr::new(10, 10, 0, 2);
pub const ERTELECOM_VANTAGE: Ipv4Addr = Ipv4Addr::new(10, 20, 0, 2);
pub const OBIT_VANTAGE: Ipv4Addr = Ipv4Addr::new(10, 30, 0, 2);
pub const US_MAIN: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 10);
pub const US_SECOND: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 11);
pub const PARIS_MACHINE: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 8);

fn profile(rates: &[f64; 5]) -> FailureProfile {
    FailureProfile {
        sni1: rates[0].max(0.0),
        sni2: rates[1],
        sni3: rates[0].max(0.0), // throttling shares SNI-I's trigger path
        sni4: rates[2],
        quic: rates[3],
        ip: rates[4],
    }
}

/// The one way to configure a [`VantageLab`] — replaces the old
/// `build`/`build_reliable`/`build_with_policy`/`build_scan`/
/// `build_scan_table1`/`build_chaos` constructor family.
///
/// Axes:
///
/// * **Universe** ([`LabBuilder::universe`]) — attaches the per-ISP
///   resolvers and lets the policy be derived. Without one, the lab is
///   the minimal sweep-worker shape: no resolvers, policy required.
/// * **Policy** — either an explicit shared handle
///   ([`LabBuilder::policy`], the cheap per-scenario path: blocklists
///   built once, shared behind the handle) or derived from the universe
///   with the [`LabBuilder::throttle_active`] / [`LabBuilder::quic_filter`]
///   toggles.
/// * **Failure dice** — devices are perfectly reliable by default
///   ([`LabBuilder::reliable`] restates it); [`LabBuilder::table1`] arms
///   the per-device Table-1 failure dice for reliability campaigns.
/// * **Chaos** ([`LabBuilder::fault_plan`]) — wires a seeded fault plan
///   through every vantage path and device after construction.
///
/// ```
/// # use tspu_registry::Universe;
/// # use tspu_topology::VantageLab;
/// let universe = Universe::generate(1);
/// let lab = VantageLab::builder().universe(&universe).table1().build();
/// assert_eq!(lab.vantages.len(), 3);
/// ```
#[derive(Default)]
#[must_use = "a LabBuilder does nothing until .build()"]
pub struct LabBuilder<'a> {
    universe: Option<&'a Universe>,
    policy: Option<PolicyHandle>,
    throttle_active: bool,
    quic_filter: Option<bool>,
    table1: bool,
    fault_plan: Option<&'a FaultPlan>,
    censor_profile: Option<CensorProfile>,
    topology: TopologySpec,
}

impl<'a> LabBuilder<'a> {
    /// Attaches a universe: per-ISP resolvers are built from it, and it
    /// becomes the policy source unless [`LabBuilder::policy`] overrides.
    pub fn universe(mut self, universe: &'a Universe) -> LabBuilder<'a> {
        self.universe = Some(universe);
        self
    }

    /// Uses an explicit shared policy handle instead of deriving one from
    /// the universe. This is what makes per-scenario labs cheap: the
    /// expensive blocklists live once behind the handle.
    pub fn policy(mut self, policy: PolicyHandle) -> LabBuilder<'a> {
        self.policy = Some(policy);
        self
    }

    /// Derived-policy toggle: SNI-III throttling in force (default off).
    pub fn throttle_active(mut self, on: bool) -> LabBuilder<'a> {
        self.throttle_active = on;
        self
    }

    /// Derived-policy toggle: the QUIC version-1 filter (default on).
    pub fn quic_filter(mut self, on: bool) -> LabBuilder<'a> {
        self.quic_filter = Some(on);
        self
    }

    /// Perfectly reliable devices — the default; kept for call sites that
    /// want the choice visible (state-machine and timeout experiments,
    /// where one unlucky exemption roll corrupts a binary search).
    pub fn reliable(mut self) -> LabBuilder<'a> {
        self.table1 = false;
        self
    }

    /// Arms the Table-1 per-device failure dice — for reliability
    /// campaigns that measure the real failure rates.
    pub fn table1(mut self) -> LabBuilder<'a> {
        self.table1 = true;
        self
    }

    /// Wires a seeded chaos plan through the built lab (device faults on
    /// every TSPU device, chaos links on every vantage path).
    pub fn fault_plan(mut self, plan: &'a FaultPlan) -> LabBuilder<'a> {
        self.fault_plan = Some(plan);
        self
    }

    /// Installs a [`CensorProfile`] on every device in the lab (default:
    /// the TSPU). The same topology then models a different country's
    /// censorship — the differential-campaign axis.
    pub fn censor_profile(mut self, profile: CensorProfile) -> LabBuilder<'a> {
        self.censor_profile = Some(profile);
        self
    }

    /// Selects the topology: [`TopologySpec::Fig1`] (the default, the
    /// paper's fixed lab) or [`TopologySpec::Generated`] (the seeded AS
    /// graph). The Fig.-1-only axes — [`LabBuilder::table1`] failure dice
    /// and [`LabBuilder::fault_plan`] chaos wiring — are no-ops on
    /// generated labs, whose devices are always reliable.
    pub fn topology(mut self, spec: TopologySpec) -> LabBuilder<'a> {
        self.topology = spec;
        self
    }

    /// Builds the lab.
    ///
    /// # Panics
    /// Panics if neither a policy nor a universe to derive one from was
    /// given.
    pub fn build(self) -> VantageLab {
        let policy = self.policy.unwrap_or_else(|| {
            let universe = self
                .universe
                .expect("LabBuilder: give .policy(...) or .universe(...) to derive one");
            policy_from_universe(universe, self.throttle_active, self.quic_filter.unwrap_or(true))
        });
        let mut lab = match &self.topology {
            TopologySpec::Fig1 => {
                VantageLab::build_inner(self.universe, policy, !self.table1, self.censor_profile)
            }
            TopologySpec::Generated(params) => {
                crate::gen::build_generated(params, policy, self.censor_profile)
            }
        };
        if let Some(plan) = self.fault_plan {
            lab.apply_fault_plan(plan);
        }
        lab
    }

    /// Builds the lab once and returns its warm [`LabImage`] for
    /// fork-per-cell campaigns. A [`LabBuilder::fault_plan`] is *not*
    /// baked into the shared image — it is stored alongside and wired
    /// through each fork at [`LabImage::fork`] time, so every chaos cell
    /// starts its fault schedule from scratch exactly like a freshly
    /// built lab.
    pub fn image(self) -> LabImage {
        let fault_plan = self.fault_plan.cloned();
        let plain = LabBuilder { fault_plan: None, ..self };
        let mut image = plain.build().snapshot();
        image.fault_plan = fault_plan;
        image
    }
}

impl VantageLab {
    /// Starts a [`LabBuilder`] — the single construction path.
    pub fn builder<'a>() -> LabBuilder<'a> {
        LabBuilder::default()
    }

    fn build_inner(
        universe: Option<&Universe>,
        policy: PolicyHandle,
        reliable: bool,
        censor_profile: Option<CensorProfile>,
    ) -> VantageLab {
        let mut net = Network::with_default_latency();
        // Scan labs default capture-off: the sweep drivers read verdicts
        // from host inboxes, not packet captures, and capture-off lets the
        // engine collapse device-free hop runs into a single event. The
        // consumers that do replay captures (chaos oracle, pcap export,
        // differential tests) opt back in with `set_capture(true)`.
        net.set_capture(false);

        let us_main = net.add_host(US_MAIN);
        let us_second = net.add_host(US_SECOND);
        let paris = net.add_host(PARIS_MACHINE);
        let tor = net.add_host(TOR_ENTRY_NODE);

        let mut vantages = Vec::new();

        // Helper: register a device and return (typed handle, id).
        let make_dev = |net: &mut Network, name: &str, fp: FailureProfile, seed: u64| {
            let mut device = TspuDevice::new(name, policy.clone(), fp, seed);
            if let Some(profile) = &censor_profile {
                device.set_censor_profile(profile.clone());
            }
            let handle = net.install_middlebox(device);
            (handle, handle.id())
        };

        let rates = |isp: &str| {
            if reliable {
                return FailureProfile::uniform(0.0);
            }
            stats::table1::PER_DEVICE
                .iter()
                .find(|(name, _)| *name == isp)
                .map(|(_, r)| profile(r))
                .expect("known ISP")
        };

        // --- Rostelecom (St. Petersburg): symmetric at hop 2, upstream-
        //     only at hop 3 (one hop behind, same AS). ---
        {
            let host = net.add_host(ROSTELECOM_VANTAGE);
            let fp = rates("Rostelecom");
            let (sym, sym_id) = make_dev(&mut net, "rostelecom-sym", fp, 101);
            let (up, up_id) = make_dev(&mut net, "rostelecom-up", fp, 102);
            let hops = [
                Ipv4Addr::new(10, 10, 255, 1),
                Ipv4Addr::new(10, 10, 255, 2),
                Ipv4Addr::new(10, 10, 255, 3),
                Ipv4Addr::new(10, 10, 255, 4),
                Ipv4Addr::new(188, 128, 10, 1), // AS12389 border
            ];
            install_vantage_routes(&mut net, host, &[us_main, us_second, paris, tor], &hops, sym_id, 2, Some((up_id, 3)));
            vantages.push(Vantage {
                name: "Rostelecom",
                city: "St. Petersburg",
                host,
                addr: ROSTELECOM_VANTAGE,
                sym_device: sym,
                upstream_devices: vec![up],
                sym_hop: 2,
            });
        }

        // --- ER-Telecom (Krasnoyarsk): one symmetric device at hop 2. ---
        {
            let host = net.add_host(ERTELECOM_VANTAGE);
            let fp = rates("ER-Telecom");
            let (sym, sym_id) = make_dev(&mut net, "ertelecom-sym", fp, 201);
            let hops = [
                Ipv4Addr::new(10, 20, 255, 1),
                Ipv4Addr::new(10, 20, 255, 2),
                Ipv4Addr::new(10, 20, 255, 3),
                Ipv4Addr::new(10, 20, 255, 4),
                Ipv4Addr::new(212, 33, 20, 1),
            ];
            install_vantage_routes(&mut net, host, &[us_main, us_second, paris, tor], &hops, sym_id, 2, None);
            vantages.push(Vantage {
                name: "ER-Telecom",
                city: "Krasnoyarsk",
                host,
                addr: ERTELECOM_VANTAGE,
                sym_device: sym,
                upstream_devices: Vec::new(),
                sym_hop: 2,
            });
        }

        // --- OBIT (Moscow): symmetric at hop 2; upstream-only devices in
        //     the transit ISPs, destination-dependent (§7.1.1). ---
        {
            let host = net.add_host(OBIT_VANTAGE);
            let fp = rates("OBIT");
            let (sym, sym_id) = make_dev(&mut net, "obit-sym", fp, 301);
            let (up_us, up_us_id) = make_dev(&mut net, "transit-rostelecom-up", fp, 302);
            let (up_fr, up_fr_id) = make_dev(&mut net, "transit-rascom-up", fp, 303);
            let obit_hops = [
                Ipv4Addr::new(10, 30, 255, 1),
                Ipv4Addr::new(10, 30, 255, 2), // symmetric device after this hop
            ];
            // Toward the US: transit via "Rostelecom" (upstream-only at
            // the transit's first link).
            let us_transit = [
                Ipv4Addr::new(188, 128, 30, 1), // transit ingress, UP after
                Ipv4Addr::new(188, 128, 30, 2),
                Ipv4Addr::new(188, 128, 30, 3),
            ];
            // Toward France: transit via "RasCom".
            let fr_transit = [
                Ipv4Addr::new(80, 64, 30, 1), // transit ingress, UP after
                Ipv4Addr::new(80, 64, 30, 2),
                Ipv4Addr::new(80, 64, 30, 3),
            ];
            for (&dst, transit, up_id) in [
                (&us_main, &us_transit, up_us_id),
                (&us_second, &us_transit, up_us_id),
                (&paris, &fr_transit, up_fr_id),
                (&tor, &fr_transit, up_fr_id),
            ] {
                let forward = vec![
                    RouteStep::router(obit_hops[0]),
                    RouteStep::with_device(obit_hops[1], sym_id, Direction::LocalToRemote),
                    RouteStep::with_device(transit[0], up_id, Direction::LocalToRemote),
                    RouteStep::router(transit[1]),
                    RouteStep::router(transit[2]),
                ];
                net.set_route(host, dst, Route { steps: forward });
                // Reverse path: different transit hops (asymmetric
                // routing), no upstream-only device, symmetric device on.
                let reverse = Route {
                    steps: vec![
                        RouteStep::router(Ipv4Addr::new(185, 140, 30, 9)),
                        RouteStep::router(Ipv4Addr::new(185, 140, 30, 8)),
                        RouteStep::with_device(obit_hops[1], sym_id, Direction::RemoteToLocal),
                        RouteStep::router(obit_hops[0]),
                    ],
                };
                net.set_route(dst, host, reverse);
            }
            vantages.push(Vantage {
                name: "OBIT",
                city: "Moscow",
                host,
                addr: OBIT_VANTAGE,
                sym_device: sym,
                upstream_devices: vec![up_us, up_fr],
                sym_hop: 2,
            });
        }

        // US machines and the Paris pair can reach each other directly.
        for (a, b) in [
            (us_main, us_second),
            (us_main, paris),
            (us_main, tor),
            (us_second, paris),
            (us_second, tor),
            (paris, tor),
        ] {
            net.set_route_symmetric(a, b, Route::through(&[Ipv4Addr::new(192, 0, 2, 254)]));
        }

        let resolvers = universe.map(tspu_ispdpi::vantage_resolvers).unwrap_or_default();

        VantageLab {
            net,
            policy,
            vantages,
            us_main,
            us_main_addr: US_MAIN,
            us_second,
            us_second_addr: US_SECOND,
            paris,
            paris_addr: PARIS_MACHINE,
            tor,
            tor_addr: TOR_ENTRY_NODE,
            resolvers,
            chaos_links: Vec::new(),
            gen: None,
        }
    }

    /// Wires a [`FaultPlan`] through the lab: the plan's device faults on
    /// every TSPU device, and one pair of chaos links per vantage on its
    /// transit segments — appended to an *existing* route step after every
    /// device on the forward path and before any device on the reverse
    /// path. Appending (rather than adding a hop) keeps hop counts and
    /// TTLs identical, so a zero-rate plan is an exact no-op.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        let device_handles: Vec<MiddleboxHandle<TspuDevice>> = self
            .vantages
            .iter()
            .flat_map(|v| std::iter::once(v.sym_device).chain(v.upstream_devices.iter().copied()))
            .collect();
        for handle in device_handles {
            self.net.middlebox_mut(handle).set_device_faults(plan.device.clone());
        }

        let remotes = [self.us_main, self.us_second, self.paris, self.tor];
        let vantage_hosts: Vec<(usize, &'static str, HostId)> =
            self.vantages.iter().enumerate().map(|(i, v)| (i, v.name, v.host)).collect();
        for (vi, name, host) in vantage_hosts {
            let fwd_label = format!("{name}-fwd");
            let rev_label = format!("{name}-rev");
            let fwd = self.net.install_middlebox(ChaosLink::labeled(
                plan.forward.clone(),
                plan.link_seed(vi as u64 * 2),
                &fwd_label,
            ));
            let rev = self.net.install_middlebox(ChaosLink::labeled(
                plan.reverse.clone(),
                plan.link_seed(vi as u64 * 2 + 1),
                &rev_label,
            ));
            self.chaos_links.push((fwd_label, fwd));
            self.chaos_links.push((rev_label, rev));
            for remote in remotes {
                let mut forward = self.net.route(host, remote).expect("vantage route").clone();
                forward.steps.last_mut().expect("non-empty route").devices
                    .push((fwd.id(), Direction::LocalToRemote));
                self.net.set_route(host, remote, forward);

                let mut reverse = self.net.route(remote, host).expect("vantage route").clone();
                reverse.steps.first_mut().expect("non-empty route").devices
                    .push((rev.id(), Direction::RemoteToLocal));
                self.net.set_route(remote, host, reverse);
            }
        }
    }

    /// The oracle audit specification covering every TSPU device in the
    /// lab: each audit shares the device's policy handle and carries its
    /// applied restart schedule, so the oracle judges captures against
    /// exactly what the device was configured to do.
    pub fn oracle_spec(&self) -> OracleSpec {
        let mut spec = OracleSpec::new(|addr: Ipv4Addr| addr.octets()[0] == 10);
        for vantage in &self.vantages {
            let handles = std::iter::once((format!("{}-sym", vantage.name), vantage.sym_device))
                .chain(
                    vantage
                        .upstream_devices
                        .iter()
                        .enumerate()
                        .map(|(i, &h)| (format!("{}-up{}", vantage.name, i), h)),
                );
            for (label, handle) in handles {
                let device = self.net.middlebox(handle);
                spec.devices.push(audit_for_profile(
                    handle.id(),
                    &label,
                    device.policy().clone(),
                    restart_times(&device.device_faults().restarts),
                    device.censor_profile().clone(),
                ));
            }
        }
        if let Some(gen) = &self.gen {
            for d in &gen.devices {
                let device = self.net.middlebox(d.handle);
                spec.devices.push(audit_for_profile(
                    d.handle.id(),
                    &d.label,
                    device.policy().clone(),
                    restart_times(&device.device_faults().restarts),
                    device.censor_profile().clone(),
                ));
            }
        }
        spec
    }

    /// The vantage by ISP name.
    pub fn vantage(&self, name: &str) -> &Vantage {
        self.vantages.iter().find(|v| v.name == name).expect("known vantage")
    }

    /// Every TSPU device handle in the lab: vantage devices in vantage
    /// order, then generated-topology devices in placement order.
    fn device_handles(&self) -> Vec<MiddleboxHandle<TspuDevice>> {
        self.vantages
            .iter()
            .flat_map(|v| std::iter::once(v.sym_device).chain(v.upstream_devices.iter().copied()))
            .chain(self.gen.iter().flat_map(|g| g.devices.iter().map(|d| d.handle)))
            .collect()
    }

    /// Arms a generated topology's churn schedule on the engine: every
    /// [`crate::gen::ChurnEvent`] becomes scheduled reroutes (both
    /// destinations, both directions) firing at its virtual instant. A
    /// no-op on the Fig. 1 lab. Call on a fresh lab or fork, before any
    /// virtual time passes — the schedule's instants are absolute.
    ///
    /// Churn is armed explicitly rather than baked into the image because
    /// sweep drivers that `run_until_idle` would otherwise warp through
    /// the entire flip schedule inside their first scenario.
    pub fn arm_route_churn(&mut self) {
        let Some(gen) = self.gen.clone() else { return };
        assert_eq!(
            self.net.now(),
            tspu_netsim::Time::ZERO,
            "arm_route_churn: arm the schedule before virtual time advances"
        );
        for ev in &gen.churn {
            let c = &gen.clients[ev.client];
            let v = if ev.to_backup { &c.backup } else { &c.primary };
            for dst in [self.us_main, self.us_second] {
                self.net.schedule_reroute(ev.at, c.host, dst, v.forward);
                self.net.schedule_reroute(ev.at, dst, c.host, v.reverse);
            }
        }
    }

    /// Enables or disables virtual-time span tracing on the engine and on
    /// every TSPU device (chaos links carry no spans).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.net.set_tracing(enabled);
        for handle in self.device_handles() {
            self.net.middlebox_mut(handle).set_tracing(enabled);
        }
    }

    /// Per-device metric snapshots keyed by middlebox id — the lookup the
    /// oracle's `attach_device_counters` wants for naming which counters
    /// moved alongside a violation.
    pub fn device_snapshots(&self) -> Vec<(MiddleboxId, Snapshot)> {
        self.device_handles()
            .into_iter()
            .map(|h| (h.id(), self.net.middlebox(h).obs_snapshot()))
            .collect()
    }

    /// The flight-recorder ledger of device `id` for `packet`'s flow: the
    /// last `n` rendered events, oldest first — the lookup the oracle's
    /// `attach_device_ledger` wants for explaining a violation. Empty when
    /// `id` is not a TSPU device (chaos links carry no recorder) or in an
    /// obs-disabled build.
    pub fn device_ledger(&self, id: MiddleboxId, packet: &[u8], n: usize) -> Vec<String> {
        self.device_handles()
            .into_iter()
            .find(|h| h.id() == id)
            .map(|h| self.net.middlebox(h).ledger_for_packet(packet, n))
            .unwrap_or_default()
    }

    /// One merged snapshot of the whole lab: the engine's `netsim.*`
    /// counters, every device's `device.<label>.*` metrics, and every
    /// chaos link's `link.<label>.*` counters. Metrics only — spans stay
    /// in the tracers (use [`VantageLab::take_obs`] to drain them too).
    pub fn obs_snapshot(&self) -> Snapshot {
        let mut snap = self.net.obs_snapshot();
        for handle in self.device_handles() {
            snap.merge(&self.net.middlebox(handle).obs_snapshot());
        }
        for (_, link) in &self.chaos_links {
            snap.merge(&self.net.middlebox(*link).obs_snapshot());
        }
        snap.merge(&self.policy.obs_snapshot());
        snap
    }

    /// Like [`VantageLab::obs_snapshot`], but also drains the recorded
    /// spans out of the engine's and every device's tracer.
    pub fn take_obs(&mut self) -> Snapshot {
        let mut snap = self.net.take_obs();
        for handle in self.device_handles() {
            snap.merge(&self.net.middlebox_mut(handle).take_obs());
        }
        for (_, link) in &self.chaos_links {
            snap.merge(&self.net.middlebox(*link).obs_snapshot());
        }
        snap.merge(&self.policy.obs_snapshot());
        snap
    }

    /// Snapshots the lab's immutable configuration as a [`LabImage`]:
    /// the network image (shared topology, middlebox configurations),
    /// the shared policy handle, vantage/endpoint handles, and resolvers.
    /// Per-run state — conntrack, fragment caches, RNG positions, clocks,
    /// captures, metric values — is *not* captured; forks start pristine.
    pub fn snapshot(&self) -> LabImage {
        LabImage {
            net: self.net.image(),
            policy: self.policy.clone(),
            vantages: self.vantages.clone(),
            us_main: self.us_main,
            us_main_addr: self.us_main_addr,
            us_second: self.us_second,
            us_second_addr: self.us_second_addr,
            paris: self.paris,
            paris_addr: self.paris_addr,
            tor: self.tor,
            tor_addr: self.tor_addr,
            resolvers: self.resolvers.clone(),
            chaos_links: self.chaos_links.clone(),
            fault_plan: None,
            gen: self.gen.clone(),
        }
    }

    /// Swaps the shared policy on the lab *and* on every TSPU device —
    /// used by churn campaigns, where each forked cell enforces its own
    /// [`PolicyHandle`]. Device state (conntrack, RNG, metrics) is
    /// untouched, so forking and then calling `set_policy` is
    /// behaviorally identical to building the lab against that handle.
    pub fn set_policy(&mut self, policy: PolicyHandle) {
        for handle in self.device_handles() {
            self.net.middlebox_mut(handle).set_policy(policy.clone());
        }
        self.policy = policy;
    }
}

/// The warm half of a [`VantageLab`], shared across forked scenario
/// cells: network topology behind `Arc`s, compiled policy behind the
/// shared [`PolicyHandle`], device and chaos-link configurations, interned
/// metric-name tables. `Send + Sync` — sweep workers fork from one
/// `&LabImage` concurrently.
pub struct LabImage {
    net: tspu_netsim::NetworkImage,
    policy: PolicyHandle,
    vantages: Vec<Vantage>,
    us_main: HostId,
    us_main_addr: Ipv4Addr,
    us_second: HostId,
    us_second_addr: Ipv4Addr,
    paris: HostId,
    paris_addr: Ipv4Addr,
    tor: HostId,
    tor_addr: Ipv4Addr,
    resolvers: Vec<IspResolver>,
    chaos_links: Vec<(String, MiddleboxHandle<ChaosLink>)>,
    /// A fault plan to wire through each fork ([`LabBuilder::image`]).
    fault_plan: Option<FaultPlan>,
    /// Generated-topology ground truth, shared into every fork.
    gen: Option<std::sync::Arc<GenTopology>>,
}

impl LabImage {
    /// Stamps out one pristine lab cell. The result is byte-identical in
    /// behavior to building the same lab from scratch: virtual time zero,
    /// empty conntrack/fragment caches, device RNGs reseeded, zeroed
    /// metrics with the same interned layout, and — if the image carries
    /// a fault plan — the plan freshly applied.
    ///
    /// `index` is the cell's scenario coordinate. It does not perturb the
    /// forked state (byte-identity with a fresh build demands that);
    /// drivers derive per-cell ports and seeds from the same index, as
    /// they always have.
    pub fn fork(&self, index: usize) -> VantageLab {
        let _ = index;
        let mut lab = VantageLab {
            net: self.net.fork(),
            policy: self.policy.clone(),
            vantages: self.vantages.clone(),
            us_main: self.us_main,
            us_main_addr: self.us_main_addr,
            us_second: self.us_second,
            us_second_addr: self.us_second_addr,
            paris: self.paris,
            paris_addr: self.paris_addr,
            tor: self.tor,
            tor_addr: self.tor_addr,
            resolvers: self.resolvers.clone(),
            chaos_links: self.chaos_links.clone(),
            gen: self.gen.clone(),
        };
        if let Some(plan) = &self.fault_plan {
            lab.apply_fault_plan(plan);
        }
        lab
    }

    /// The shared policy handle this image's forks enforce.
    pub fn policy(&self) -> &PolicyHandle {
        &self.policy
    }
}

/// Installs forward and reverse routes from a vantage through its ISP
/// hops to each destination: symmetric device after hop `sym_hop`
/// (1-based), optional upstream-only device after hop `up_hop` on the
/// forward path only.
fn install_vantage_routes(
    net: &mut Network,
    vantage: HostId,
    dsts: &[HostId],
    hops: &[Ipv4Addr],
    sym_id: MiddleboxId,
    sym_hop: usize,
    upstream: Option<(MiddleboxId, usize)>,
) {
    for &dst in dsts {
        let mut forward = Vec::new();
        for (i, &hop) in hops.iter().enumerate() {
            let hop_no = i + 1;
            let mut step = RouteStep::router(hop);
            if hop_no == sym_hop {
                step.devices.push((sym_id, Direction::LocalToRemote));
            }
            if let Some((up_id, up_hop)) = upstream {
                if hop_no == up_hop {
                    step.devices.push((up_id, Direction::LocalToRemote));
                }
            }
            forward.push(step);
        }
        net.set_route(vantage, dst, Route { steps: forward });

        // Reverse: same router hops in reverse, symmetric device only.
        let mut reverse = Vec::new();
        for (i, &hop) in hops.iter().enumerate().rev() {
            let hop_no = i + 1;
            let mut step = RouteStep::router(hop);
            if hop_no == sym_hop {
                step.devices.push((sym_id, Direction::RemoteToLocal));
            }
            reverse.push(step);
        }
        net.set_route(dst, vantage, Route { steps: reverse });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_stack::craft::TcpPacketSpec;
    use tspu_stack::{ServerApp, TcpClient, TcpClientConfig};
    use tspu_wire::ipv4::Ipv4Packet;
    use tspu_wire::tcp::{TcpFlags, TcpSegment};
    use tspu_wire::tls::ClientHelloBuilder;

    fn lab() -> (Universe, VantageLab) {
        let universe = Universe::generate(11);
        let policy = policy_from_universe(&universe, false, true);
        let lab = VantageLab::builder().universe(&universe).policy(policy).table1().build();
        (universe, lab)
    }

    #[test]
    fn blocked_domain_reset_from_every_vantage() {
        let (_u, mut lab) = lab();
        lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(US_MAIN)));
        for (i, vantage) in lab.vantages.iter().enumerate() {
            let ch = ClientHelloBuilder::new("twitter.com").build();
            let config = TcpClientConfig::new(vantage.addr, 46000 + i as u16, US_MAIN, 443, ch);
            let (app, report, syn) = TcpClient::start(config);
            lab.net.set_app(vantage.host, Box::new(app));
            lab.net.send_from(vantage.host, syn);
            lab.net.run_until_idle();
            assert_eq!(
                report.outcome(),
                tspu_stack::ClientOutcome::Reset,
                "uniform blocking at {}",
                vantage.name
            );
        }
    }

    #[test]
    fn innocuous_domain_loads_from_every_vantage() {
        let (_u, mut lab) = lab();
        lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(US_MAIN)));
        for (i, vantage) in lab.vantages.iter().enumerate() {
            let ch = ClientHelloBuilder::new("rust-lang.org").build();
            let config = TcpClientConfig::new(vantage.addr, 47000 + i as u16, US_MAIN, 443, ch);
            let (app, report, syn) = TcpClient::start(config);
            lab.net.set_app(vantage.host, Box::new(app));
            lab.net.send_from(vantage.host, syn);
            lab.net.run_until_idle();
            assert_eq!(report.outcome(), tspu_stack::ClientOutcome::GotData, "{}", vantage.name);
        }
    }

    #[test]
    fn tor_node_syn_answered_with_rewritten_rst() {
        // The §5.2 IP-blocking check: SYN from the Tor node reaches the
        // vantage, the SYN/ACK back is rewritten to RST/ACK.
        let (_u, mut lab) = lab();
        let vantage = lab.vantage("ER-Telecom").host;
        let vantage_addr = lab.vantage("ER-Telecom").addr;
        lab.net.set_app(vantage, Box::new(ServerApp::echo_server(vantage_addr)));
        let syn = TcpPacketSpec::new(TOR_ENTRY_NODE, 33000, vantage_addr, 7, TcpFlags::SYN).build();
        lab.net.send_from(lab.tor, syn);
        lab.net.run_until_idle();
        let inbox = lab.net.take_inbox(lab.tor);
        assert_eq!(inbox.len(), 1);
        let ip = Ipv4Packet::new_checked(&inbox[0].1[..]).unwrap();
        let seg = TcpSegment::new_checked(ip.payload()).unwrap();
        assert_eq!(seg.flags(), TcpFlags::RST_ACK);
    }

    #[test]
    fn paris_machine_unaffected_control() {
        // The control pair: same data center, not IP-blocked.
        let (_u, mut lab) = lab();
        let vantage = lab.vantage("ER-Telecom").host;
        let vantage_addr = lab.vantage("ER-Telecom").addr;
        lab.net.set_app(vantage, Box::new(ServerApp::echo_server(vantage_addr)));
        let syn = TcpPacketSpec::new(PARIS_MACHINE, 33001, vantage_addr, 7, TcpFlags::SYN).build();
        lab.net.send_from(lab.paris, syn);
        lab.net.run_until_idle();
        let inbox = lab.net.take_inbox(lab.paris);
        assert_eq!(inbox.len(), 1);
        let ip = Ipv4Packet::new_checked(&inbox[0].1[..]).unwrap();
        let seg = TcpSegment::new_checked(ip.payload()).unwrap();
        assert_eq!(seg.flags(), TcpFlags::SYN_ACK);
    }

    #[test]
    fn upstream_only_devices_see_no_downstream() {
        let (_u, mut lab) = lab();
        // Run one blocked exchange from Rostelecom.
        lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(US_MAIN)));
        let v = lab.vantage("Rostelecom");
        let host = v.host;
        let addr = v.addr;
        let ch = ClientHelloBuilder::new("twitter.com").build();
        let (app, _report, syn) = TcpClient::start(TcpClientConfig::new(addr, 48000, US_MAIN, 443, ch));
        lab.net.set_app(host, Box::new(app));
        lab.net.send_from(host, syn);
        lab.net.run_until_idle();
        let v = lab.vantage("Rostelecom");
        let sym = lab.net.middlebox(v.sym_device).stats();
        let up = lab.net.middlebox(v.upstream_devices[0]).stats();
        assert!(sym.packets_seen > up.packets_seen);
        assert!(up.packets_seen > 0);
    }

    #[test]
    fn lab_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<VantageLab>();
        assert_send::<Vantage>();
    }

    #[test]
    fn lab_image_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LabImage>();
    }

    #[test]
    fn forked_lab_matches_fresh_build() {
        let universe = Universe::generate(11);
        let policy = policy_from_universe(&universe, false, true);
        let image =
            VantageLab::builder().universe(&universe).policy(policy.clone()).table1().image();

        let run = |mut lab: VantageLab| {
            lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(US_MAIN)));
            let v = lab.vantage("Rostelecom");
            let (host, addr) = (v.host, v.addr);
            let ch = ClientHelloBuilder::new("twitter.com").build();
            let (app, report, syn) =
                TcpClient::start(TcpClientConfig::new(addr, 49000, US_MAIN, 443, ch));
            lab.net.set_app(host, Box::new(app));
            lab.net.send_from(host, syn);
            lab.net.run_until_idle();
            (report.outcome(), format!("{:?}", lab.obs_snapshot()))
        };

        let fresh = VantageLab::builder()
            .universe(&universe)
            .policy(policy.clone())
            .table1()
            .build();
        let from_image = image.fork(7);
        assert_eq!(run(from_image), run(fresh));

        // Forking is repeatable: a cell dirtied by traffic leaves the
        // image untouched.
        let again = image.fork(0);
        assert_eq!(again.obs_snapshot().counter("netsim.events_processed"), 0);
    }

    #[test]
    fn explicit_fig1_spec_is_byte_identical_to_default() {
        // The TopologySpec pin: `.topology(TopologySpec::Fig1)` must be
        // the exact lab the default builder produces — same verdicts,
        // same instrument readings, same interned-route count.
        let universe = Universe::generate(11);
        let policy = policy_from_universe(&universe, false, true);
        let run = |mut lab: VantageLab| {
            assert!(lab.gen.is_none());
            lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(US_MAIN)));
            let v = lab.vantage("Rostelecom");
            let (host, addr) = (v.host, v.addr);
            let ch = ClientHelloBuilder::new("twitter.com").build();
            let (app, report, syn) =
                TcpClient::start(TcpClientConfig::new(addr, 49100, US_MAIN, 443, ch));
            lab.net.set_app(host, Box::new(app));
            lab.net.send_from(host, syn);
            lab.net.run_until_idle();
            (report.outcome(), lab.net.interned_routes(), format!("{:?}", lab.obs_snapshot()))
        };
        let default_lab =
            VantageLab::builder().universe(&universe).policy(policy.clone()).table1().build();
        let explicit = VantageLab::builder()
            .universe(&universe)
            .policy(policy)
            .table1()
            .topology(TopologySpec::Fig1)
            .build();
        assert_eq!(run(default_lab), run(explicit));
    }

    #[test]
    fn vantage_count_and_devices_match_paper() {
        let (_u, lab) = lab();
        assert_eq!(lab.vantages.len(), 3);
        assert_eq!(lab.vantage("Rostelecom").upstream_devices.len(), 1);
        assert_eq!(lab.vantage("ER-Telecom").upstream_devices.len(), 0);
        assert_eq!(lab.vantage("OBIT").upstream_devices.len(), 2);
        // Symmetric devices within the first three hops (§7.1).
        assert!(lab.vantages.iter().all(|v| v.sym_hop <= 3));
        assert_eq!(lab.resolvers.len(), 3);
    }
}
