//! Seeded AS-graph generation — "RuNet at scale" for the vantage lab.
//!
//! [`TopologySpec`] is the axis [`crate::LabBuilder`] dispatches on:
//! `Fig1` builds the fixed paper topology exactly as before, while
//! `Generated(GenParams)` grows a parameterized AS graph — leaf ISPs
//! attached to transit cores by preferential attachment under a single
//! border AS, TSPU devices placed by a [`Placement`] policy — at sizes
//! (100…5000 ASes) the fixed lab never reaches. Every client leaf gets
//! *two* provider paths (primary and backup transit), both pre-interned
//! in the network's route arena, and a seeded [`ChurnEvent`] schedule
//! flips clients between them at virtual-time instants via
//! [`tspu_netsim::Network::schedule_reroute`] — the substrate the
//! tomography campaign (`tspu_measure::tomography`) localizes censors on.
//!
//! The generator is a pure function of `(seed, GenParams)`: same inputs,
//! byte-identical topology, devices, and churn schedule (pinned by
//! proptest in `tests/gen_proptests.rs`).

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tspu_core::{CensorProfile, FailureProfile, PolicyHandle, TspuDevice};
use tspu_netsim::{Direction, HostId, MiddleboxHandle, Network, Route, RouteId, RouteStep};

use crate::lab::{VantageLab, PARIS_MACHINE, US_MAIN, US_SECOND};
use crate::policy_build::TOR_ENTRY_NODE;

/// Which topology a [`crate::LabBuilder`] constructs.
///
/// `Fig1` is the default and reproduces the paper's fixed lab
/// byte-identically (pinned by a differential test in `lab.rs`).
/// `Generated` plugs in the seeded AS-graph generator; the Fig.-1-only
/// axes ([`crate::LabBuilder::table1`], [`crate::LabBuilder::fault_plan`])
/// are no-ops on generated labs, whose devices are always reliable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TopologySpec {
    /// The fixed Fig. 1 measurement setup (three vantages, five devices).
    #[default]
    Fig1,
    /// A seeded AS graph from [`GenParams`].
    Generated(GenParams),
}

/// Where the generator places TSPU devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// One device per transit core *and* at the border — the saturated
    /// deployment the paper's §5.2.1 findings trend toward.
    AllTransit,
    /// A single device at the border AS — the centralized-GFW contrast.
    BorderOnly,
    /// `k` device sites drawn (seeded) from the border + transit cores —
    /// partial rollout; some client paths may cross no device at all.
    RandomK(usize),
}

/// Parameters for one generated topology. Construct with
/// [`GenParams::new`] and refine with the builder methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenParams {
    /// RNG seed; the graph is a pure function of `(seed, params)`.
    pub seed: u64,
    /// Total AS count: 1 border + transits + leaf ISPs.
    pub num_ases: usize,
    /// Probing clients, one per leaf AS (client `i` lives in leaf `i`).
    pub clients: usize,
    /// TSPU device placement policy.
    pub placement: Placement,
    /// Number of scheduled path flips in the churn schedule.
    pub churn_flips: usize,
    /// Virtual-time spacing between consecutive flips.
    pub churn_period: Duration,
}

impl GenParams {
    /// Defaults: 4 clients, all-transit placement, 8 flips 30 s apart.
    pub fn new(seed: u64, num_ases: usize) -> GenParams {
        GenParams {
            seed,
            num_ases,
            clients: 4,
            placement: Placement::AllTransit,
            churn_flips: 8,
            churn_period: Duration::from_secs(30),
        }
    }

    /// Sets the probing-client count.
    pub fn clients(mut self, clients: usize) -> GenParams {
        self.clients = clients;
        self
    }

    /// Sets the device placement policy.
    pub fn placement(mut self, placement: Placement) -> GenParams {
        self.placement = placement;
        self
    }

    /// Sets the churn schedule: `flips` path flips, `period` apart.
    pub fn churn(mut self, flips: usize, period: Duration) -> GenParams {
        self.churn_flips = flips;
        self.churn_period = period;
        self
    }
}

/// One provider path of a generated client: the transit core it crosses,
/// both interned route directions, and the ground truth the tomography
/// campaign scores against.
#[derive(Debug, Clone)]
pub struct RouteVariant {
    /// AS id of the transit core this variant crosses.
    pub transit_as: usize,
    /// Interned client → destination route (shared by both US hosts —
    /// the steps are identical, so the arena holds it once).
    pub forward: RouteId,
    /// Interned destination → client route.
    pub reverse: RouteId,
    /// Every AS id on the path: `[leaf, transit, border]`. The node sets
    /// tomography intersects.
    pub path_ases: Vec<usize>,
    /// Devices on this path as `(index into GenTopology::devices, hop)`;
    /// hop is 1-based from the client, matching `LocalizedDevice`.
    pub devices: Vec<(usize, u8)>,
}

/// One probing client of a generated topology.
#[derive(Debug, Clone)]
pub struct GenClient {
    pub host: HostId,
    pub addr: Ipv4Addr,
    /// AS id of the leaf this client lives in.
    pub leaf_as: usize,
    pub primary: RouteVariant,
    pub backup: RouteVariant,
}

/// One placed TSPU device.
#[derive(Clone)]
pub struct GenDevice {
    pub handle: MiddleboxHandle<TspuDevice>,
    pub label: String,
    /// AS id of the site this device enforces at (border or transit).
    pub as_id: usize,
}

/// One scheduled path flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Virtual instant of the flip (from lab time zero).
    pub at: Duration,
    /// Which client's routes flip.
    pub client: usize,
    /// The variant in force *after* this flip.
    pub to_backup: bool,
}

/// Ground truth for a generated lab: clients with both provider paths,
/// placed devices, and the churn schedule. Shared by `Arc` from
/// [`VantageLab`] into every [`crate::LabImage`] fork — like the route
/// arena, it is topology, not per-run state.
pub struct GenTopology {
    pub params: GenParams,
    /// Transit core count (`T`); AS ids are `0` = border, `1..=T` =
    /// transits, `T+1..num_ases` = leaves.
    pub num_transits: usize,
    pub clients: Vec<GenClient>,
    pub devices: Vec<GenDevice>,
    /// Flips in schedule order (strictly increasing `at`).
    pub churn: Vec<ChurnEvent>,
}

impl GenTopology {
    /// Whether `client` rides its backup variant after the first
    /// `flips_applied` churn events — replayed from the schedule, so any
    /// observer tracking "which path is this probe on" agrees with the
    /// engine's route table by construction.
    pub fn on_backup_after(&self, client: usize, flips_applied: usize) -> bool {
        self.churn[..flips_applied.min(self.churn.len())]
            .iter()
            .rev()
            .find(|ev| ev.client == client)
            .map(|ev| ev.to_backup)
            .unwrap_or(false)
    }

    /// The variant `client` rides after `flips_applied` churn events.
    pub fn variant_after(&self, client: usize, flips_applied: usize) -> &RouteVariant {
        let c = &self.clients[client];
        if self.on_backup_after(client, flips_applied) { &c.backup } else { &c.primary }
    }

    /// Device indices reachable by at least one client variant — the
    /// candidate set a tomography cell draws its active censor from
    /// (sorted, deduplicated; empty under a placement that left every
    /// probed path clean).
    pub fn censor_candidates(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .clients
            .iter()
            .flat_map(|c| c.primary.devices.iter().chain(c.backup.devices.iter()))
            .map(|&(di, _)| di)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Router address of an AS: border, transit cores, then leaves. Disjoint
/// ranges — border on `188.128.50.1` (mirroring Fig. 1's AS12389 border),
/// transits on `172.100.t.1` (t ≤ 64), leaves on `172.(16+hi).lo.1`
/// (16+hi < 100 for every supported size).
fn router_addr(num_transits: usize, as_id: usize) -> Ipv4Addr {
    if as_id == 0 {
        Ipv4Addr::new(188, 128, 50, 1)
    } else if as_id <= num_transits {
        Ipv4Addr::new(172, 100, as_id as u8, 1)
    } else {
        let leaf = as_id - 1 - num_transits;
        Ipv4Addr::new(172, 16 + (leaf >> 8) as u8, (leaf & 0xff) as u8, 1)
    }
}

/// Client address: inside `10.0.0.0/8` so the oracle's "local side"
/// predicate covers generated clients exactly like Fig. 1 vantages.
fn client_addr(index: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 101 + (index / 250) as u8, (index % 250) as u8, 2)
}

/// Builds a generated lab. Pure in `(params, policy identity)`: the graph,
/// device placement, and churn schedule depend only on the seed and
/// parameters.
pub(crate) fn build_generated(
    params: &GenParams,
    policy: PolicyHandle,
    censor_profile: Option<CensorProfile>,
) -> VantageLab {
    let num_transits = (params.num_ases / 50).clamp(2, 64);
    let num_leaves = params.num_ases.saturating_sub(1 + num_transits);
    assert!(num_leaves >= 2, "GenParams: need ≥ 2 leaf ASes (num_ases ≥ {})", 3 + num_transits);
    assert!(params.clients >= 1, "GenParams: need ≥ 1 client");
    assert!(
        params.clients <= num_leaves,
        "GenParams: {} clients but only {num_leaves} leaf ASes",
        params.clients
    );

    let mut rng = SmallRng::seed_from_u64(params.seed);

    // --- Provider assignment: each leaf picks a primary transit by
    //     degree-weighted preferential attachment and a distinct uniform
    //     backup. Client leaves (the first `clients` leaves) are instead
    //     pinned round-robin across the cores — probing vantages must be
    //     provider-diverse or tomography's intersections cannot separate
    //     a transit censor from the border. ---
    let mut degree = vec![1usize; num_transits];
    let mut providers = Vec::with_capacity(num_leaves);
    for leaf in 0..num_leaves {
        let (primary, backup) = if leaf < params.clients {
            (leaf % num_transits, (leaf + 1) % num_transits)
        } else {
            let total: usize = degree.iter().sum();
            let mut roll = rng.gen_range(0..total);
            let mut primary = num_transits - 1;
            for (t, &d) in degree.iter().enumerate() {
                if roll < d {
                    primary = t;
                    break;
                }
                roll -= d;
            }
            let mut backup = rng.gen_range(0..num_transits - 1);
            if backup >= primary {
                backup += 1;
            }
            (primary, backup)
        };
        degree[primary] += 1;
        providers.push((primary, backup));
    }

    // --- Device placement over the chokepoint sites (AS ids 0..=T). ---
    let sites: Vec<usize> = match params.placement {
        Placement::AllTransit => (0..=num_transits).collect(),
        Placement::BorderOnly => vec![0],
        Placement::RandomK(k) => {
            let mut pool: Vec<usize> = (0..=num_transits).collect();
            let k = k.min(pool.len());
            for i in 0..k {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            pool.truncate(k);
            pool.sort_unstable();
            pool
        }
    };

    let mut net = Network::with_default_latency();
    net.set_capture(false);

    let us_main = net.add_host(US_MAIN);
    let us_second = net.add_host(US_SECOND);
    let paris = net.add_host(PARIS_MACHINE);
    let tor = net.add_host(TOR_ENTRY_NODE);

    // Generated devices are always reliable: the Table-1 failure dice are
    // measurements of the five real Fig. 1 devices and do not transfer.
    let mut devices = Vec::with_capacity(sites.len());
    let mut device_at_site = vec![usize::MAX; num_transits + 1];
    for &site in &sites {
        let label = format!("gen-as{site}");
        let mut device = TspuDevice::new(
            &label,
            policy.clone(),
            FailureProfile::uniform(0.0),
            1_000 + site as u64,
        );
        if let Some(profile) = &censor_profile {
            device.set_censor_profile(profile.clone());
        }
        let handle = net.install_middlebox(device);
        device_at_site[site] = devices.len();
        devices.push(GenDevice { handle, label, as_id: site });
    }

    // --- Clients and their two provider paths. Both variants are
    //     interned up front; only the primary is installed. The forward
    //     steps are destination-independent, so the two US destinations
    //     share one arena slot per direction — the dedupe that keeps a
    //     5000-AS lab's arena at ~4 slots per client. ---
    let border_router = router_addr(num_transits, 0);
    let build_variant = |net: &mut Network, leaf: usize, transit: usize| {
        let leaf_as = 1 + num_transits + leaf;
        let transit_as = 1 + transit;
        let leaf_router = router_addr(num_transits, leaf_as);
        let transit_router = router_addr(num_transits, transit_as);
        let mut path_devices = Vec::new();
        let mut step_fwd = |addr: Ipv4Addr, site: usize, hop: u8| {
            let di = device_at_site[site];
            if di != usize::MAX {
                path_devices.push((di, hop));
                RouteStep::with_device(addr, devices[di].handle.id(), Direction::LocalToRemote)
            } else {
                RouteStep::router(addr)
            }
        };
        let forward = Route {
            steps: vec![
                RouteStep::router(leaf_router),
                step_fwd(transit_router, transit_as, 2),
                step_fwd(border_router, 0, 3),
            ],
        };
        let step_rev = |addr: Ipv4Addr, site: usize| {
            let di = device_at_site[site];
            if di != usize::MAX {
                RouteStep::with_device(addr, devices[di].handle.id(), Direction::RemoteToLocal)
            } else {
                RouteStep::router(addr)
            }
        };
        let reverse = Route {
            steps: vec![
                step_rev(border_router, 0),
                step_rev(transit_router, transit_as),
                RouteStep::router(leaf_router),
            ],
        };
        let variant = RouteVariant {
            transit_as,
            forward: net.intern_route(forward.clone()),
            reverse: net.intern_route(reverse.clone()),
            path_ases: vec![leaf_as, transit_as, 0],
            devices: path_devices,
        };
        (variant, forward, reverse)
    };

    let mut clients = Vec::with_capacity(params.clients);
    for (i, &(primary_t, backup_t)) in providers.iter().enumerate().take(params.clients) {
        let addr = client_addr(i);
        let host = net.add_host(addr);
        let (primary, fwd, rev) = build_variant(&mut net, i, primary_t);
        let (backup, _, _) = build_variant(&mut net, i, backup_t);
        for dst in [us_main, us_second] {
            net.set_route(host, dst, fwd.clone());
            net.set_route(dst, host, rev.clone());
        }
        clients.push(GenClient { host, addr, leaf_as: 1 + num_transits + i, primary, backup });
    }

    // Endpoint mesh, as in Fig. 1: the out-of-country machines reach each
    // other through the shared data-center hop.
    for (a, b) in [
        (us_main, us_second),
        (us_main, paris),
        (us_main, tor),
        (us_second, paris),
        (us_second, tor),
        (paris, tor),
    ] {
        net.set_route_symmetric(a, b, Route::through(&[Ipv4Addr::new(192, 0, 2, 254)]));
    }

    // --- Churn schedule: flips round-robin over clients at strictly
    //     increasing instants, each toggling that client's variant. With
    //     churn_flips ≥ clients every probing client flips at least once,
    //     which is what lets tomography subtract a blocked client's own
    //     leaf from the suspect set. ---
    let mut on_backup = vec![false; params.clients];
    let mut churn = Vec::with_capacity(params.churn_flips);
    for f in 0..params.churn_flips {
        let client = f % params.clients;
        on_backup[client] = !on_backup[client];
        churn.push(ChurnEvent {
            at: params.churn_period * (f as u32 + 1),
            client,
            to_backup: on_backup[client],
        });
    }

    let gen = GenTopology { params: params.clone(), num_transits, clients, devices, churn };

    VantageLab {
        net,
        policy,
        vantages: Vec::new(),
        us_main,
        us_main_addr: US_MAIN,
        us_second,
        us_second_addr: US_SECOND,
        paris,
        paris_addr: PARIS_MACHINE,
        tor,
        tor_addr: TOR_ENTRY_NODE,
        resolvers: Vec::new(),
        chaos_links: Vec::new(),
        gen: Some(Arc::new(gen)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspu_registry::Universe;

    use crate::policy_build::policy_from_universe;

    fn policy() -> PolicyHandle {
        policy_from_universe(&Universe::generate(11), false, true)
    }

    #[test]
    fn generated_lab_shape() {
        let params = GenParams::new(42, 300).clients(4);
        let lab = VantageLab::builder()
            .policy(policy())
            .topology(TopologySpec::Generated(params))
            .build();
        let gen = lab.gen.as_ref().expect("generated lab");
        assert_eq!(gen.num_transits, 6);
        assert_eq!(gen.clients.len(), 4);
        // AllTransit: border + every transit carries a device.
        assert_eq!(gen.devices.len(), 7);
        assert_eq!(gen.churn.len(), 8);
        // Every client's variants cross distinct transits.
        for c in &gen.clients {
            assert_ne!(c.primary.transit_as, c.backup.transit_as);
        }
    }

    #[test]
    fn route_arena_shared_across_destinations() {
        // Forward/reverse steps are destination-independent: per client,
        // the arena holds at most 4 variant slots (2 variants × 2
        // directions), not 4 per destination — plus the 2 mesh slots.
        let params = GenParams::new(7, 300).clients(8);
        let lab = VantageLab::builder()
            .policy(policy())
            .topology(TopologySpec::Generated(params))
            .build();
        assert!(lab.net.interned_routes() <= 8 * 4 + 2);
    }

    #[test]
    fn placement_border_only_and_random_k() {
        let base = GenParams::new(9, 300);
        let border = VantageLab::builder()
            .policy(policy())
            .topology(TopologySpec::Generated(base.clone().placement(Placement::BorderOnly)))
            .build();
        let bg = border.gen.as_ref().unwrap();
        assert_eq!(bg.devices.len(), 1);
        assert_eq!(bg.devices[0].as_id, 0);

        let k = VantageLab::builder()
            .policy(policy())
            .topology(TopologySpec::Generated(base.placement(Placement::RandomK(3))))
            .build();
        let kg = k.gen.as_ref().unwrap();
        assert_eq!(kg.devices.len(), 3);
        assert!(kg.devices.iter().all(|d| d.as_id <= kg.num_transits));
    }

    #[test]
    fn churn_replay_matches_schedule() {
        let params = GenParams::new(5, 300).clients(3).churn(7, Duration::from_secs(10));
        let lab = VantageLab::builder()
            .policy(policy())
            .topology(TopologySpec::Generated(params))
            .build();
        let gen = lab.gen.as_ref().unwrap();
        // Flips round-robin: client 0 flips at events 0, 3, 6 — toggling
        // backup, primary, backup.
        assert!(!gen.on_backup_after(0, 0));
        assert!(gen.on_backup_after(0, 1));
        assert!(gen.on_backup_after(0, 3));
        assert!(!gen.on_backup_after(0, 4));
        assert!(gen.on_backup_after(0, 7));
        // Schedule instants strictly increase.
        assert!(gen.churn.windows(2).all(|w| w[0].at < w[1].at));
    }

    #[test]
    fn armed_churn_flips_installed_routes() {
        let params = GenParams::new(3, 100).clients(2).churn(2, Duration::from_secs(5));
        let mut lab = VantageLab::builder()
            .policy(policy())
            .topology(TopologySpec::Generated(params))
            .build();
        let gen = Arc::clone(lab.gen.as_ref().unwrap());
        let c0 = &gen.clients[0];
        let before = lab.net.route(c0.host, lab.us_main).unwrap().steps[1].hop_addr;
        lab.arm_route_churn();
        lab.net.run_for(Duration::from_secs(6));
        let after = lab.net.route(c0.host, lab.us_main).unwrap().steps[1].hop_addr;
        assert_ne!(before, after, "client 0's transit hop must flip");
        assert_eq!(
            after,
            router_addr(gen.num_transits, c0.backup.transit_as),
            "flip lands on the backup transit"
        );
    }
}
