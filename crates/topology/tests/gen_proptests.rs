//! Property-based pins for the seeded AS-graph generator:
//!
//! 1. **Purity** — the generator is a pure function of `(seed, GenParams)`:
//!    building the same spec twice yields identical clients, devices,
//!    churn schedules, and route arenas.
//! 2. **Connectivity** — every probing client reaches both US
//!    destinations on every supported placement, with provider-diverse
//!    variants and well-formed `[leaf, transit, border]` AS paths.

use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use tspu_core::PolicyHandle;
use tspu_registry::Universe;
use tspu_topology::{
    policy_from_universe, GenParams, Placement, TopologySpec, VantageLab,
};

fn policy() -> PolicyHandle {
    static POLICY: OnceLock<PolicyHandle> = OnceLock::new();
    POLICY.get_or_init(|| policy_from_universe(&Universe::generate(3), false, true)).clone()
}

fn params() -> impl Strategy<Value = GenParams> {
    (
        any::<u64>(),
        100usize..=1200,
        1usize..=8,
        prop_oneof![
            Just(Placement::AllTransit),
            Just(Placement::BorderOnly),
            (0usize..=5).prop_map(Placement::RandomK),
        ],
        0usize..=12,
        5u64..=60,
    )
        .prop_map(|(seed, num_ases, clients, placement, flips, period)| {
            GenParams::new(seed, num_ases)
                .clients(clients)
                .placement(placement)
                .churn(flips, Duration::from_secs(period))
        })
}

/// Everything observable about a generated topology, rendered to one
/// comparable string: graph shape, client variants (route ids included —
/// they pin the interning order), devices, churn, and the route table
/// arena size.
fn fingerprint(lab: &VantageLab) -> String {
    let gen = lab.gen.as_ref().expect("generated lab");
    let devices: Vec<(usize, &str)> =
        gen.devices.iter().map(|d| (d.as_id, d.label.as_str())).collect();
    format!(
        "transits={} clients={:?} devices={:?} churn={:?} arena={}",
        gen.num_transits,
        gen.clients,
        devices,
        gen.churn,
        lab.net.interned_routes(),
    )
}

fn build(p: &GenParams) -> VantageLab {
    VantageLab::builder()
        .policy(policy())
        .topology(TopologySpec::Generated(p.clone()))
        .build()
}

proptest! {
    /// Same `(seed, GenParams)` ⇒ byte-identical topology.
    #[test]
    fn generator_is_pure(p in params()) {
        prop_assert_eq!(fingerprint(&build(&p)), fingerprint(&build(&p)));
    }

    /// Every client reaches both destinations in both directions, on
    /// provider-diverse variants whose AS paths are `[leaf, transit,
    /// border]` with in-range ids.
    #[test]
    fn clients_are_connected_and_diverse(p in params()) {
        let lab = build(&p);
        let gen = lab.gen.as_ref().unwrap();
        for (i, c) in gen.clients.iter().enumerate() {
            for dst in [lab.us_main, lab.us_second] {
                prop_assert!(lab.net.route(c.host, dst).is_some(), "client {i} forward");
                prop_assert!(lab.net.route(dst, c.host).is_some(), "client {i} reverse");
            }
            prop_assert_ne!(c.primary.transit_as, c.backup.transit_as, "client {i} diversity");
            for v in [&c.primary, &c.backup] {
                prop_assert_eq!(&v.path_ases, &vec![c.leaf_as, v.transit_as, 0]);
                prop_assert!(
                    (1..=gen.num_transits).contains(&v.transit_as),
                    "client {i} transit {} out of range",
                    v.transit_as
                );
            }
        }
        // Churn replay covers the whole schedule without panicking and
        // ends on a consistent state.
        for c in 0..gen.clients.len() {
            let _ = gen.variant_after(c, gen.churn.len());
        }
    }
}

/// The seed reaches the graph: a one-bit change moves device placement on
/// a random-`k` layout (deterministic spot check — the purity property
/// above guarantees each side reproduces itself).
#[test]
fn seed_reaches_the_graph() {
    let base = GenParams::new(42, 600).placement(Placement::RandomK(3));
    let other = GenParams { seed: 43, ..base.clone() };
    assert_ne!(fingerprint(&build(&base)), fingerprint(&build(&other)));
}
