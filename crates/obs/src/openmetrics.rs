//! OpenMetrics text exposition — hand-rolled, dependency-free, exactly
//! like [`Snapshot::to_json`].
//!
//! The renderer maps the snapshot's dot-path names onto the OpenMetrics
//! charset (`[a-zA-Z0-9_:]`, everything else becomes `_`), emits one
//! `# TYPE` line per metric family, counters with the mandated `_total`
//! suffix, gauges (both kinds — merge semantics are a snapshot concern,
//! the wire format is just "gauge"), histograms as cumulative `_bucket`
//! samples with `le` upper bounds plus `_sum`/`_count`, and terminates
//! with `# EOF`. Output is deterministic: name-ordered like the snapshot
//! itself, so a sharded campaign's exposition is byte-identical at every
//! `TSPU_THREADS` setting.

use std::fmt::Write as _;

use crate::hist::{bucket_index, bucket_lower, Histogram, BUCKETS};
use crate::snapshot::{MetricValue, Snapshot};

/// A snapshot name as an OpenMetrics metric name: every character
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gets a `_`
/// prefix. (Distinct dot-path names that differ only in separators can
/// collide after sanitizing; snapshot names are dot-separated
/// alphanumerics in practice, where the mapping is injective.)
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Renders `snap` as a complete OpenMetrics exposition ending in `# EOF`.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(64 + snap.metrics().len() * 48);
    let mut typed = Vec::new();
    render_snapshot(&mut out, snap, None, &mut typed);
    out.push_str("# EOF\n");
    out
}

/// Appends `snap`'s samples to `out`, optionally stamped with a virtual
/// timestamp (`ts_us`, rendered in seconds). `typed` carries the metric
/// families already given a `# TYPE` line, so a multi-window series emits
/// each family's metadata once.
pub(crate) fn render_snapshot(
    out: &mut String,
    snap: &Snapshot,
    ts_us: Option<u64>,
    typed: &mut Vec<String>,
) {
    let ts = ts_us.map(fmt_timestamp);
    let suffix = |out: &mut String| {
        if let Some(ts) = &ts {
            out.push(' ');
            out.push_str(ts);
        }
        out.push('\n');
    };
    for (name, value) in snap.metrics() {
        let family = metric_name(name);
        let kind = match value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) | MetricValue::GaugeLast(_) => "gauge",
            MetricValue::Hist(_) => "histogram",
        };
        if !typed.contains(&family) {
            let _ = writeln!(out, "# TYPE {family} {kind}");
            typed.push(family.clone());
        }
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{family}_total {v}");
                suffix(out);
            }
            MetricValue::Gauge(v) | MetricValue::GaugeLast(v) => {
                let _ = write!(out, "{family} {v}");
                suffix(out);
            }
            MetricValue::Hist(h) => render_histogram(out, &family, h, &suffix),
        }
    }
}

fn render_histogram(out: &mut String, family: &str, h: &Histogram, suffix: &dyn Fn(&mut String)) {
    let mut cumulative = 0u64;
    for (lower, n) in h.nonzero_buckets() {
        cumulative += n;
        // `le` is the bucket's inclusive upper bound: one below the next
        // bucket's lower bound. The last bucket covers up to `u64::MAX`
        // and is folded into `+Inf` below.
        let index = bucket_index(lower);
        if index + 1 < BUCKETS {
            let le = bucket_lower(index + 1) - 1;
            let _ = write!(out, "{family}_bucket{{le=\"{le}\"}} {cumulative}");
            suffix(out);
        }
    }
    let _ = write!(out, "{family}_bucket{{le=\"+Inf\"}} {}", h.count());
    suffix(out);
    let _ = write!(out, "{family}_sum {}", h.sum());
    suffix(out);
    let _ = write!(out, "{family}_count {}", h.count());
    suffix(out);
}

/// Virtual microseconds as an OpenMetrics timestamp (seconds, with the
/// fractional part only when nonzero — trailing zeros trimmed so the
/// common whole-second window stamps stay compact and stable).
fn fmt_timestamp(us: u64) -> String {
    let secs = us / 1_000_000;
    let frac = us % 1_000_000;
    if frac == 0 {
        return secs.to_string();
    }
    let mut s = format!("{secs}.{frac:06}");
    while s.ends_with('0') {
        s.pop();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::new();
        snap.insert("device.lab.verdicts.drop", MetricValue::Counter(12));
        snap.insert("netsim.wheel_depth", MetricValue::Gauge(40));
        snap.insert("policy.epoch", MetricValue::GaugeLast(3));
        let mut h = Histogram::new();
        h.record(2);
        h.record(5);
        h.record(5);
        snap.insert("load.event_ns", MetricValue::Hist(h));
        snap
    }

    /// The golden exposition: pinned byte-for-byte so any format drift is
    /// a deliberate, reviewed change.
    #[test]
    fn golden_exposition() {
        let expected = "\
# TYPE device_lab_verdicts_drop counter
device_lab_verdicts_drop_total 12
# TYPE load_event_ns histogram
load_event_ns_bucket{le=\"2\"} 1
load_event_ns_bucket{le=\"5\"} 3
load_event_ns_bucket{le=\"+Inf\"} 3
load_event_ns_sum 12
load_event_ns_count 3
# TYPE netsim_wheel_depth gauge
netsim_wheel_depth 40
# TYPE policy_epoch gauge
policy_epoch 3
# EOF
";
        assert_eq!(render(&sample_snapshot()), expected);
    }

    #[test]
    fn names_are_sanitized_and_digit_prefixed() {
        assert_eq!(metric_name("device.er-telecom.rst"), "device_er_telecom_rst");
        assert_eq!(metric_name("9to5"), "_9to5");
        assert_eq!(metric_name("a:b_c"), "a:b_c");
    }

    #[test]
    fn timestamps_render_in_seconds() {
        assert_eq!(fmt_timestamp(0), "0");
        assert_eq!(fmt_timestamp(2_000_000), "2");
        assert_eq!(fmt_timestamp(1_500_000), "1.5");
        assert_eq!(fmt_timestamp(1_000_001), "1.000001");
    }

    /// Parses `family_total value` lines into (family, value).
    fn counter_lines(om: &str) -> Vec<(String, u64)> {
        om.lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| {
                let (name, v) = l.split_once(' ')?;
                let family = name.strip_suffix("_total")?;
                Some((family.to_string(), v.parse().ok()?))
            })
            .collect()
    }

    fn line_merge(a: &str, b: &str) -> Vec<(String, u64)> {
        let mut merged = counter_lines(a);
        for (family, v) in counter_lines(b) {
            match merged.iter_mut().find(|(f, _)| *f == family) {
                Some((_, sum)) => *sum += v,
                None => merged.push((family, v)),
            }
        }
        merged.retain(|(_, v)| *v > 0);
        merged.sort();
        merged
    }

    fn counters_from(entries: &[(String, u64)]) -> Snapshot {
        let mut snap = Snapshot::new();
        for (name, v) in entries {
            snap.insert(name.clone(), MetricValue::Counter(*v));
        }
        snap
    }

    proptest::proptest! {
        /// Merge-then-export equals export-then-line-merge for counters:
        /// the exposition is a faithful homomorphism of snapshot merging.
        #[test]
        fn counter_export_commutes_with_merge(
            left in proptest::collection::vec(("[a-z][a-z0-9_]{0,8}", 0u64..1_000_000), 0..12),
            right in proptest::collection::vec(("[a-z][a-z0-9_]{0,8}", 0u64..1_000_000), 0..12),
        ) {
            let (a, b) = (counters_from(&left), counters_from(&right));
            let mut merged = a.clone();
            merged.merge(&b);
            let mut from_merged = counter_lines(&render(&merged));
            from_merged.sort();
            proptest::prop_assert_eq!(from_merged, line_merge(&render(&a), &render(&b)));
        }
    }
}
