//! `tspu_obs` — deterministic observability for the TSPU reproduction.
//!
//! Three pieces, all designed around the simulator's determinism contract
//! (identical results at every `TSPU_THREADS` setting):
//!
//! * [`Registry`]: typed counters, gauges, and log-linear [`Histogram`]s
//!   under hierarchical dot-path names (`device.<id>.verdicts.rst_rewrite`,
//!   `netsim.queue_depth`). Registration interns the name once; recording
//!   is an indexed integer op — no hashing, no allocation.
//! * [`Tracer`]: virtual-time span recording into a bounded ring buffer,
//!   exported in Chrome trace-event format
//!   ([`Snapshot::write_chrome_trace`]) with *simulated* microseconds as
//!   the clock, so traces are byte-identical across thread counts.
//! * [`Snapshot`]: the ordered, sparse, diffable capture — counters add,
//!   high-water gauges take max, last-value gauges keep the later
//!   operand, histograms merge elementwise, spans sort by
//!   `(virtual ts, scenario, seq)`. `to_json()` is deterministic.
//! * [`TimeSeries`]: fixed-width virtual-time windows of snapshots — the
//!   time-resolved layer. Deterministic and mergeable in window-index
//!   order, exported as JSON, Chrome-trace counter tracks alongside the
//!   span timeline, and the OpenMetrics text format
//!   ([`openmetrics::render`], hand-rolled like `to_json`).
//!
//! The whole hot-path half sits behind the `obs` cargo feature (default
//! on). With `--no-default-features`, [`Registry`] and [`Tracer`] become
//! zero-sized types whose methods are empty inline bodies: instrumented
//! code compiles to the uninstrumented code, which the workspace proves
//! with a counting-allocator test and an enabled-vs-disabled bench.
//! [`Snapshot`] and [`TimeSeries`] are cold-path data and exist in both
//! shapes; with the feature off they are simply empty.

pub mod hist;
pub mod openmetrics;
pub mod registry;
pub mod series;
pub mod snapshot;

pub use hist::{bucket_index, bucket_lower, Histogram, BUCKETS};
pub use registry::{CounterId, GaugeId, HistogramId, Registry, Tracer};
pub use series::TimeSeries;
pub use snapshot::{MetricValue, Snapshot, SpanRecord};

/// Whether this build records anything (the `obs` feature state).
pub const ENABLED: bool = cfg!(feature = "obs");
