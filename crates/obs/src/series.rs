//! Virtual-time telemetry series: fixed-width windows over snapshots.
//!
//! A [`TimeSeries`] buckets observations into windows of a configurable
//! virtual-time width (default 1 virtual second). Each window holds a
//! sparse [`Snapshot`], so anything a registry can capture — counters,
//! both gauge kinds, histograms — can be laid out over time. Like
//! `Snapshot`, a series is cold-path data: it exists in both `obs`
//! feature shapes, and when instrumentation is off the snapshots fed to
//! it are simply empty.
//!
//! Determinism: windows are keyed by *virtual* window index, observations
//! land via the same deterministic merge rules snapshots use, and
//! [`TimeSeries::merge`] combines series window-by-window in index order
//! — a sharded campaign's series is byte-identical at every
//! `TSPU_THREADS` setting, exactly like its merged snapshot.
//!
//! Three exports: JSON ([`TimeSeries::to_json`]), Chrome-trace counter
//! tracks rendered alongside the span timeline
//! ([`TimeSeries::write_chrome_trace`], `"ph":"C"` events), and the
//! OpenMetrics text format with per-window timestamps
//! ([`TimeSeries::to_openmetrics`]).

use std::io::{self, Write};

use crate::openmetrics;
use crate::snapshot::{json_string, span_event_json, MetricValue, Snapshot};

/// Default window width: one virtual second, in microseconds.
pub const DEFAULT_WINDOW_US: u64 = 1_000_000;

/// Fixed-width virtual-time windows of metric snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    window_us: u64,
    /// `(window index, window snapshot)`, ascending by index. Sparse:
    /// windows nothing was observed in do not exist.
    windows: Vec<(u64, Snapshot)>,
}

impl TimeSeries {
    /// A series with the default 1-virtual-second window.
    pub fn new() -> TimeSeries {
        TimeSeries::with_window_us(DEFAULT_WINDOW_US)
    }

    /// A series with `window_us`-wide windows (clamped to ≥ 1 µs).
    pub fn with_window_us(window_us: u64) -> TimeSeries {
        TimeSeries { window_us: window_us.max(1), windows: Vec::new() }
    }

    /// The window width in virtual microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Number of (non-empty) windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The windows as `(index, snapshot)`, ascending by index. A window's
    /// virtual span is `[index * window_us, (index + 1) * window_us)`.
    pub fn windows(&self) -> &[(u64, Snapshot)] {
        &self.windows
    }

    /// The window snapshot covering virtual instant `at_us`, if any.
    pub fn window_at(&self, at_us: u64) -> Option<&Snapshot> {
        let index = at_us / self.window_us;
        self.windows
            .binary_search_by_key(&index, |(i, _)| *i)
            .ok()
            .map(|at| &self.windows[at].1)
    }

    fn window_mut(&mut self, index: u64) -> &mut Snapshot {
        let at = match self.windows.binary_search_by_key(&index, |(i, _)| *i) {
            Ok(at) => at,
            Err(at) => {
                self.windows.insert(at, (index, Snapshot::new()));
                at
            }
        };
        &mut self.windows[at].1
    }

    /// Merges `snap` into the window containing virtual instant `at_us`.
    /// Observations are *per-window contributions* (counter deltas, gauge
    /// samples), merged under the usual snapshot rules — feed each window
    /// what happened inside it, not cumulative totals.
    pub fn observe(&mut self, at_us: u64, snap: &Snapshot) {
        if snap.metrics().is_empty() {
            return;
        }
        self.window_mut(at_us / self.window_us).merge(snap);
    }

    /// Records one metric into the window containing `at_us` — the
    /// single-instrument convenience over [`TimeSeries::observe`].
    pub fn record(&mut self, at_us: u64, name: impl Into<String>, value: MetricValue) {
        self.window_mut(at_us / self.window_us).insert(name, value);
    }

    /// Merges another series in, window-by-window in index order. Window
    /// widths must match (debug-asserted); mismatched widths would bucket
    /// the same instant differently and the result would be meaningless.
    pub fn merge(&mut self, other: &TimeSeries) {
        debug_assert_eq!(self.window_us, other.window_us, "window width mismatch");
        for (index, snap) in &other.windows {
            self.window_mut(*index).merge(snap);
        }
    }

    /// Per-window values of one counter, as `(window index, value)` for
    /// every window the counter appears in — the "curve" accessor.
    pub fn counter_series(&self, name: &str) -> Vec<(u64, u64)> {
        self.windows
            .iter()
            .filter_map(|(i, snap)| {
                let v = snap.counter(name);
                (v > 0).then_some((*i, v))
            })
            .collect()
    }

    /// Per-window values of one gauge (either kind).
    pub fn gauge_series(&self, name: &str) -> Vec<(u64, i64)> {
        self.windows
            .iter()
            .filter_map(|(i, snap)| snap.gauge(name).map(|v| (*i, v)))
            .collect()
    }

    /// Deterministic JSON: window width, then windows in index order,
    /// each rendered with [`Snapshot::to_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.windows.len() * 128);
        out.push_str("{\"window_us\":");
        out.push_str(&self.window_us.to_string());
        out.push_str(",\"windows\":[");
        for (i, (index, snap)) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{index},\"at_us\":{},\"snapshot\":{}}}",
                index * self.window_us,
                snap.to_json()
            ));
        }
        out.push_str("]}");
        out
    }

    /// The series in OpenMetrics text exposition, one sample per
    /// (metric, window) with the window-end virtual timestamp, terminated
    /// by `# EOF`. Hand-rolled like [`Snapshot::to_json`] — no deps.
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<String> = Vec::new();
        for (index, snap) in &self.windows {
            let end_us = (index + 1) * self.window_us;
            openmetrics::render_snapshot(&mut out, snap, Some(end_us), &mut typed);
        }
        out.push_str("# EOF\n");
        out
    }

    /// Chrome-trace JSON combining the snapshot's span timeline with this
    /// series' counter tracks: spans render as `"ph":"X"` complete events
    /// (identical to [`Snapshot::write_chrome_trace`]), every counter and
    /// gauge in every window as a `"ph":"C"` counter event at the window
    /// start. Loadable in Perfetto; counters draw as per-track area
    /// charts under the span rows.
    pub fn write_chrome_trace<W: Write>(&self, spans: &Snapshot, mut w: W) -> io::Result<()> {
        let mut counter_events: Vec<String> = Vec::new();
        for (index, snap) in &self.windows {
            let ts = index * self.window_us;
            for (name, value) in snap.metrics() {
                let v = match value {
                    MetricValue::Counter(v) => *v as i64,
                    MetricValue::Gauge(v) | MetricValue::GaugeLast(v) => *v,
                    MetricValue::Hist(_) => continue,
                };
                counter_events.push(format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"args\":{{\"value\":{v}}}}}",
                    json_string(name),
                ));
            }
        }
        writeln!(w, "[")?;
        let total = spans.spans().len() + counter_events.len();
        let mut written = 0usize;
        for span in spans.spans() {
            written += 1;
            let comma = if written < total { "," } else { "" };
            writeln!(w, "{}{comma}", span_event_json(span))?;
        }
        for event in &counter_events {
            written += 1;
            let comma = if written < total { "," } else { "" };
            writeln!(w, "{event}{comma}")?;
        }
        writeln!(w, "]")
    }

    /// The combined trace as a string (tests, small series).
    pub fn chrome_trace_string(&self, spans: &Snapshot) -> String {
        let mut buf = Vec::new();
        self.write_chrome_trace(spans, &mut buf).expect("write to Vec cannot fail");
        String::from_utf8(buf).expect("trace output is ASCII")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::snapshot::SpanRecord;

    fn one(name: &str, v: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.insert(name, MetricValue::Counter(v));
        s
    }

    #[test]
    fn observations_bucket_by_window_and_merge_inside_one() {
        let mut ts = TimeSeries::with_window_us(1_000);
        ts.observe(100, &one("pps", 3));
        ts.observe(900, &one("pps", 4)); // same window: counters add
        ts.observe(2_500, &one("pps", 5)); // window 2
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.counter_series("pps"), vec![(0, 7), (2, 5)]);
        assert_eq!(ts.window_at(999).unwrap().counter("pps"), 7);
        assert!(ts.window_at(1_500).is_none(), "window 1 is sparse");
    }

    #[test]
    fn merge_is_windowwise_and_order_independent_for_counters() {
        let build = |order: bool| {
            let mut a = TimeSeries::with_window_us(1_000);
            a.observe(0, &one("x", 1));
            a.observe(3_000, &one("x", 2));
            let mut b = TimeSeries::with_window_us(1_000);
            b.observe(0, &one("x", 10));
            b.observe(5_000, &one("x", 20));
            if order {
                a.merge(&b);
                a
            } else {
                b.merge(&a);
                b
            }
        };
        assert_eq!(build(true).to_json(), build(false).to_json());
        assert_eq!(build(true).counter_series("x"), vec![(0, 11), (3, 2), (5, 20)]);
    }

    #[test]
    fn last_gauges_keep_later_window_sample_on_merge() {
        let mut ts = TimeSeries::with_window_us(1_000);
        ts.record(500, "epoch", MetricValue::GaugeLast(3));
        ts.record(700, "epoch", MetricValue::GaugeLast(2));
        assert_eq!(ts.gauge_series("epoch"), vec![(0, 2)]);
    }

    #[test]
    fn json_is_deterministic_and_names_windows() {
        let mut ts = TimeSeries::new();
        ts.record(2 * DEFAULT_WINDOW_US, "flows", MetricValue::Counter(9));
        let json = ts.to_json();
        assert_eq!(json, ts.clone().to_json());
        assert!(json.contains("\"window_us\":1000000"), "{json}");
        assert!(json.contains("\"index\":2"), "{json}");
        assert!(json.contains("\"flows\":9"), "{json}");
    }

    #[test]
    fn chrome_trace_interleaves_spans_and_counter_tracks() {
        let mut spans = Snapshot::new();
        spans.push_spans([SpanRecord {
            ts_us: 5,
            dur_us: 1,
            name: "hop",
            cat: "netsim",
            scenario: 0,
            seq: 0,
        }]);
        let mut ts = TimeSeries::with_window_us(1_000);
        ts.record(0, "pps", MetricValue::Counter(7));
        let mut h = Histogram::new();
        h.record(1);
        ts.record(0, "lat", MetricValue::Hist(h)); // hists skipped in tracks
        let trace = ts.chrome_trace_string(&spans);
        assert!(trace.contains("\"ph\":\"X\""), "{trace}");
        assert!(trace.contains("\"ph\":\"C\""), "{trace}");
        assert!(trace.contains("\"value\":7"), "{trace}");
        assert!(!trace.contains("lat"), "histograms have no counter track: {trace}");
        // Exactly one comma-terminated line (2 events total).
        assert!(trace.lines().nth(1).unwrap().ends_with(','), "{trace}");
        assert!(!trace.lines().nth(2).unwrap().ends_with(','), "{trace}");
    }

    #[test]
    fn openmetrics_ends_with_eof_and_stamps_window_ends() {
        let mut ts = TimeSeries::with_window_us(1_000_000);
        ts.record(0, "load.pps", MetricValue::Counter(42));
        ts.record(1_500_000, "load.pps", MetricValue::Counter(40));
        let om = ts.to_openmetrics();
        assert!(om.ends_with("# EOF\n"), "{om}");
        assert!(om.contains("load_pps_total 42 1"), "{om}");
        assert!(om.contains("load_pps_total 40 2"), "{om}");
        // One TYPE line per metric family, not per sample.
        assert_eq!(om.matches("# TYPE load_pps counter").count(), 1, "{om}");
    }
}
