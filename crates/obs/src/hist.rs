//! Log-linear histogram: 4 linear sub-buckets per power-of-two octave,
//! covering the full `u64` range in 252 fixed buckets.
//!
//! The layout is the HdrHistogram idea stripped to what a deterministic
//! simulator needs: recording is a handful of integer ops (no floats, no
//! allocation), bucket lower bounds are *exact* at powers of two, and
//! merging is elementwise addition — associative and commutative, so a
//! sweep can accumulate per-worker histograms in any order and still
//! produce byte-identical snapshots at every thread count.

/// Bits of linear resolution inside each octave (4 sub-buckets).
const SUB_BITS: u32 = 2;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets: values `0..4` map to themselves, then 62 octaves × 4;
/// `u64::MAX` lands in the last bucket, index 251.
pub const BUCKETS: usize = 252;

/// The bucket index for `value`. Total and branch-free after the small
/// `value < 4` case; `u64::MAX` lands in bucket 251, the last one.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = msb - SUB_BITS + 1;
    let sub = (value >> (msb - SUB_BITS)) & (SUB - 1);
    (octave as u64 * SUB + sub) as usize
}

/// The smallest value that maps to bucket `index` — exact at powers of
/// two: `bucket_lower(bucket_index(1 << k)) == 1 << k` for every `k`.
pub fn bucket_lower(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let octave = (index as u64) / SUB;
    let sub = (index as u64) % SUB;
    (SUB + sub) << (octave - 1)
}

/// A mergeable log-linear histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
    /// `u128` so even `u64::MAX` samples cannot overflow the running sum.
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram { buckets: Box::new([0; BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample. No allocation, no saturation surprises.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The lower bound of the bucket holding the q-quantile (`0.0..=1.0`)
    /// of recorded samples — a bucket-resolution percentile.
    pub fn quantile_lower(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_lower(index);
            }
        }
        bucket_lower(BUCKETS - 1)
    }

    /// Elementwise merge — associative and commutative, so accumulation
    /// order (worker assignment, chunk order) cannot affect the result.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_map_to_themselves() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
    }

    #[test]
    fn index_is_monotone_and_in_range() {
        let mut prev = 0;
        for v in (0..64).flat_map(|k| [1u64 << k, (1u64 << k) + 1, (1u64 << k) - 1]) {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "value {v} -> bucket {i}");
            let _ = prev;
            prev = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let median = h.quantile_lower(0.5);
        assert!((256..=512).contains(&median), "median bucket lower {median}");
        assert!(h.quantile_lower(1.0) <= 1000);
        assert!(h.quantile_lower(0.0) >= 1);
    }
}
