//! The metrics registry and span tracer — the *hot-path* half of the
//! crate, compiled in two shapes:
//!
//! * with the `obs` feature (default): real storage behind `u32` metric
//!   ids. Registration allocates once (name interning); every increment
//!   afterwards is an indexed add with no hashing and no allocation.
//! * without the feature: [`Registry`] and [`Tracer`] are zero-sized and
//!   every method is an empty `#[inline]` body, so call sites compile to
//!   nothing and the packet path stays bit-for-bit the unobserved one.
//!
//! Both shapes expose the *same* API, so instrumented code never needs
//! `cfg` of its own.

use crate::snapshot::Snapshot;
#[cfg(feature = "obs")]
use crate::snapshot::{MetricValue, SpanRecord};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(#[cfg(feature = "obs")] u32);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(#[cfg(feature = "obs")] u32);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(#[cfg(feature = "obs")] u32);

// ---------------------------------------------------------------------------
// Enabled build: real storage.
// ---------------------------------------------------------------------------

#[cfg(feature = "obs")]
mod enabled {
    use std::sync::Arc;

    use super::*;
    use crate::hist::Histogram;

    /// A single-owner metrics registry. Each simulation component owns
    /// one (or a scope of one); sweeps merge per-scenario snapshots.
    ///
    /// Interned names live behind an [`Arc`] so [`Registry::fork_reset`]
    /// can hand a zeroed copy to a forked lab cell without re-running
    /// the string formatting and interning that dominates registry
    /// construction.
    /// How a gauge merges across snapshots: high-water mark or last value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum GaugeKind {
        Max,
        Last,
    }

    #[derive(Debug, Default)]
    pub struct Registry {
        /// `Arc<str>` rather than `String`: [`Registry::fork_reset`] runs
        /// once per device per forked lab cell, and sharing the scope
        /// keeps the fork allocation-free.
        scope: Arc<str>,
        names: Arc<Vec<String>>,
        counters: Vec<(u32, u64)>,
        gauges: Vec<(u32, i64, GaugeKind)>,
        histograms: Vec<(u32, Histogram)>,
    }

    impl Registry {
        pub fn new() -> Registry {
            Registry::default()
        }

        /// A registry whose metric names are prefixed `scope.`, e.g.
        /// `device.rostelecom-sym`.
        pub fn scoped(scope: impl Into<String>) -> Registry {
            Registry { scope: Arc::from(scope.into()), ..Registry::default() }
        }

        /// Whether recording actually happens in this build.
        #[inline]
        pub const fn enabled(&self) -> bool {
            true
        }

        fn intern(&mut self, name: &str) -> u32 {
            let full = if self.scope.is_empty() {
                name.to_string()
            } else {
                let mut s = String::with_capacity(self.scope.len() + 1 + name.len());
                s.push_str(&self.scope);
                s.push('.');
                s.push_str(name);
                s
            };
            if let Some(at) = self.names.iter().position(|n| *n == full) {
                return at as u32;
            }
            let names = Arc::make_mut(&mut self.names);
            names.push(full);
            (names.len() - 1) as u32
        }

        /// Registers (or re-resolves) a counter under `name`.
        pub fn counter(&mut self, name: &str) -> CounterId {
            let id = self.intern(name);
            if !self.counters.iter().any(|(n, _)| *n == id) {
                self.counters.push((id, 0));
            }
            let slot = self.counters.iter().position(|(n, _)| *n == id).unwrap();
            CounterId(slot as u32)
        }

        /// Registers (or re-resolves) a high-water-mark gauge under
        /// `name`: snapshots merge it with `max`.
        pub fn gauge(&mut self, name: &str) -> GaugeId {
            self.gauge_kind(name, GaugeKind::Max)
        }

        /// Registers (or re-resolves) a last-value gauge under `name`:
        /// snapshots merge it by keeping the later operand's value (the
        /// right semantics for `policy.epoch`-style state gauges, where
        /// "max" would hide a rollback).
        pub fn gauge_last(&mut self, name: &str) -> GaugeId {
            self.gauge_kind(name, GaugeKind::Last)
        }

        fn gauge_kind(&mut self, name: &str, kind: GaugeKind) -> GaugeId {
            let id = self.intern(name);
            if !self.gauges.iter().any(|(n, _, _)| *n == id) {
                self.gauges.push((id, 0, kind));
            }
            // Re-registration keeps the original kind: the first
            // registration fixes the merge semantics for the name.
            let slot = self.gauges.iter().position(|(n, _, _)| *n == id).unwrap();
            GaugeId(slot as u32)
        }

        /// Registers (or re-resolves) a histogram under `name`.
        pub fn histogram(&mut self, name: &str) -> HistogramId {
            let id = self.intern(name);
            if !self.histograms.iter().any(|(n, _)| *n == id) {
                self.histograms.push((id, Histogram::new()));
            }
            let slot = self.histograms.iter().position(|(n, _)| *n == id).unwrap();
            HistogramId(slot as u32)
        }

        #[inline]
        pub fn inc(&mut self, id: CounterId) {
            self.counters[id.0 as usize].1 += 1;
        }

        #[inline]
        pub fn add(&mut self, id: CounterId, by: u64) {
            self.counters[id.0 as usize].1 += by;
        }

        /// Current value of a counter (test/report convenience).
        #[inline]
        pub fn counter_value(&self, id: CounterId) -> u64 {
            self.counters[id.0 as usize].1
        }

        #[inline]
        pub fn set(&mut self, id: GaugeId, value: i64) {
            self.gauges[id.0 as usize].1 = value;
        }

        /// Current value of a gauge (test/report convenience).
        #[inline]
        pub fn gauge_value(&self, id: GaugeId) -> i64 {
            self.gauges[id.0 as usize].1
        }

        /// Sets the gauge to `max(current, value)` — high-water marks.
        #[inline]
        pub fn set_max(&mut self, id: GaugeId, value: i64) {
            let g = &mut self.gauges[id.0 as usize].1;
            *g = (*g).max(value);
        }

        #[inline]
        pub fn record(&mut self, id: HistogramId, value: u64) {
            self.histograms[id.0 as usize].1.record(value);
        }

        /// Captures every metric into a sorted, sparse [`Snapshot`].
        pub fn snapshot(&self) -> Snapshot {
            let mut snap = Snapshot::new();
            for (name, v) in &self.counters {
                snap.insert(self.names[*name as usize].clone(), MetricValue::Counter(*v));
            }
            for (name, v, kind) in &self.gauges {
                if *v != 0 {
                    let value = match kind {
                        GaugeKind::Max => MetricValue::Gauge(*v),
                        GaugeKind::Last => MetricValue::GaugeLast(*v),
                    };
                    snap.insert(self.names[*name as usize].clone(), value);
                }
            }
            for (name, h) in &self.histograms {
                snap.insert(self.names[*name as usize].clone(), MetricValue::Hist(h.clone()));
            }
            snap
        }

        /// Resets all values (ids stay valid; names stay interned).
        pub fn reset(&mut self) {
            for (_, v) in &mut self.counters {
                *v = 0;
            }
            for (_, v, _) in &mut self.gauges {
                *v = 0;
            }
            for (_, h) in &mut self.histograms {
                *h = Histogram::new();
            }
        }

        /// A pristine copy for a forked lab cell: the slot layout (and
        /// therefore every previously returned [`CounterId`]/[`GaugeId`]/
        /// [`HistogramId`]) is preserved, all values are zero, and the
        /// interned name table is shared rather than rebuilt. Snapshots
        /// of the fork are byte-identical to those of a freshly
        /// constructed registry that registered the same names.
        pub fn fork_reset(&self) -> Registry {
            Registry {
                scope: Arc::clone(&self.scope),
                names: Arc::clone(&self.names),
                counters: self.counters.iter().map(|(n, _)| (*n, 0)).collect(),
                gauges: self.gauges.iter().map(|(n, _, k)| (*n, 0, *k)).collect(),
                histograms: self.histograms.iter().map(|(n, _)| (*n, Histogram::new())).collect(),
            }
        }
    }

    /// Virtual-time span recorder. Disabled (sampling off) by default:
    /// `span()` on a disabled tracer is a branch and nothing else, and
    /// the ring buffer is only allocated on first enabled record.
    #[derive(Debug, Default)]
    pub struct Tracer {
        enabled: bool,
        seq: u32,
        ring: Vec<SpanRecord>,
        cap: usize,
    }

    /// Default ring capacity per tracer: enough for a full scenario's
    /// hops at per-packet granularity without unbounded growth.
    const DEFAULT_RING: usize = 16 * 1024;

    impl Tracer {
        pub fn new() -> Tracer {
            Tracer { enabled: false, seq: 0, ring: Vec::new(), cap: DEFAULT_RING }
        }

        /// A tracer with a custom ring capacity (oldest spans overwrite).
        pub fn with_capacity(cap: usize) -> Tracer {
            Tracer { cap: cap.max(1), ..Tracer::new() }
        }

        /// Runtime sampling switch; recording is a no-op while disabled.
        pub fn set_enabled(&mut self, enabled: bool) {
            self.enabled = enabled;
        }

        #[inline]
        pub fn is_enabled(&self) -> bool {
            self.enabled
        }

        /// Records a completed span `[begin_us, end_us]` in virtual time.
        #[inline]
        pub fn span(&mut self, name: &'static str, cat: &'static str, begin_us: u64, end_us: u64) {
            if !self.enabled {
                return;
            }
            let rec = SpanRecord {
                ts_us: begin_us,
                dur_us: end_us.saturating_sub(begin_us),
                name,
                cat,
                scenario: 0,
                seq: self.seq,
            };
            self.seq = self.seq.wrapping_add(1);
            if self.ring.len() < self.cap {
                if self.ring.capacity() == 0 {
                    self.ring.reserve(self.cap.min(256));
                }
                self.ring.push(rec);
            } else {
                // Ring wrap: overwrite oldest. `seq` keeps global order.
                let at = (rec.seq as usize) % self.cap;
                self.ring[at] = rec;
            }
        }

        /// Spans recorded so far (unsorted; [`Snapshot`] sorts on ingest).
        pub fn spans(&self) -> &[SpanRecord] {
            &self.ring
        }

        /// Drains recorded spans into `snap` and clears the ring.
        pub fn drain_into(&mut self, snap: &mut Snapshot) {
            snap.push_spans(self.ring.drain(..));
        }

        /// A fresh tracer for a forked lab cell: empty ring, `seq` 0,
        /// same capacity and sampling switch as `self`.
        pub fn fork_reset(&self) -> Tracer {
            Tracer { enabled: self.enabled, seq: 0, ring: Vec::new(), cap: self.cap }
        }
    }
}

// ---------------------------------------------------------------------------
// Disabled build: zero-sized no-ops with the identical surface.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "obs"))]
mod disabled {
    use super::*;

    /// Zero-sized stand-in: every method is an empty inlined body.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Registry;

    impl Registry {
        #[inline]
        pub fn new() -> Registry {
            Registry
        }

        #[inline]
        pub fn scoped(_scope: impl Into<String>) -> Registry {
            Registry
        }

        #[inline]
        pub const fn enabled(&self) -> bool {
            false
        }

        #[inline]
        pub fn counter(&mut self, _name: &str) -> CounterId {
            CounterId()
        }

        #[inline]
        pub fn gauge(&mut self, _name: &str) -> GaugeId {
            GaugeId()
        }

        #[inline]
        pub fn gauge_last(&mut self, _name: &str) -> GaugeId {
            GaugeId()
        }

        #[inline]
        pub fn histogram(&mut self, _name: &str) -> HistogramId {
            HistogramId()
        }

        #[inline]
        pub fn inc(&mut self, _id: CounterId) {}

        #[inline]
        pub fn add(&mut self, _id: CounterId, _by: u64) {}

        #[inline]
        pub fn counter_value(&self, _id: CounterId) -> u64 {
            0
        }

        #[inline]
        pub fn set(&mut self, _id: GaugeId, _value: i64) {}

        #[inline]
        pub fn gauge_value(&self, _id: GaugeId) -> i64 {
            0
        }

        #[inline]
        pub fn set_max(&mut self, _id: GaugeId, _value: i64) {}

        #[inline]
        pub fn record(&mut self, _id: HistogramId, _value: u64) {}

        #[inline]
        pub fn snapshot(&self) -> Snapshot {
            Snapshot::new()
        }

        #[inline]
        pub fn reset(&mut self) {}

        #[inline]
        pub fn fork_reset(&self) -> Registry {
            Registry
        }
    }

    /// Zero-sized stand-in for the span recorder.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Tracer;

    impl Tracer {
        #[inline]
        pub fn new() -> Tracer {
            Tracer
        }

        #[inline]
        pub fn with_capacity(_cap: usize) -> Tracer {
            Tracer
        }

        #[inline]
        pub fn set_enabled(&mut self, _enabled: bool) {}

        #[inline]
        pub fn is_enabled(&self) -> bool {
            false
        }

        #[inline]
        pub fn span(&mut self, _name: &'static str, _cat: &'static str, _begin: u64, _end: u64) {}

        #[inline]
        pub fn drain_into(&mut self, _snap: &mut Snapshot) {}

        #[inline]
        pub fn fork_reset(&self) -> Tracer {
            Tracer
        }
    }
}

#[cfg(feature = "obs")]
pub use enabled::{Registry, Tracer};

#[cfg(not(feature = "obs"))]
pub use disabled::{Registry, Tracer};

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn scoped_names_and_values() {
        let mut r = Registry::scoped("device.lab");
        let c = r.counter("verdicts.drop");
        let g = r.gauge("depth");
        let h = r.histogram("latency_us");
        r.inc(c);
        r.add(c, 4);
        r.set_max(g, 7);
        r.set_max(g, 3);
        r.record(h, 100);
        let snap = r.snapshot();
        assert_eq!(snap.counter("device.lab.verdicts.drop"), 5);
        assert_eq!(snap.gauge("device.lab.depth"), Some(7));
        assert_eq!(snap.histogram("device.lab.latency_us").unwrap().count(), 1);
        assert_eq!(r.counter_value(c), 5);
    }

    #[test]
    fn last_gauge_snapshots_as_last_value_kind() {
        use crate::snapshot::MetricValue;
        let mut r = Registry::scoped("policy");
        let epoch = r.gauge_last("epoch");
        let depth = r.gauge("depth");
        r.set(epoch, 7);
        r.set_max(depth, 7);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("policy.epoch"), Some(7));
        assert_eq!(r.gauge_value(epoch), 7);
        let kinds: Vec<&MetricValue> = snap.metrics().iter().map(|(_, v)| v).collect();
        assert!(kinds.contains(&&MetricValue::GaugeLast(7)));
        assert!(kinds.contains(&&MetricValue::Gauge(7)));
        // The kind survives a fork (same slots, zeroed values).
        let mut f = r.fork_reset();
        f.set(epoch, 3);
        assert_eq!(f.snapshot().metrics().iter().filter(|(_, v)| matches!(v, MetricValue::GaugeLast(3))).count(), 1);
    }

    #[test]
    fn re_registration_returns_same_slot() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.inc(b);
        assert_eq!(r.counter_value(a), 2);
    }

    #[test]
    fn fork_reset_preserves_slots_and_zeroes_values() {
        let mut r = Registry::scoped("device.lab");
        let c = r.counter("verdicts.drop");
        let g = r.gauge("depth");
        let h = r.histogram("latency_us");
        r.add(c, 9);
        r.set_max(g, 4);
        r.record(h, 50);

        let mut f = r.fork_reset();
        // Old ids resolve to the same names in the fork, values start at 0.
        assert_eq!(f.counter_value(c), 0);
        f.inc(c);
        f.set(g, 2);
        f.record(h, 7);
        let snap = f.snapshot();
        assert_eq!(snap.counter("device.lab.verdicts.drop"), 1);
        assert_eq!(snap.gauge("device.lab.depth"), Some(2));
        assert_eq!(snap.histogram("device.lab.latency_us").unwrap().count(), 1);
        // The source registry is untouched.
        assert_eq!(r.counter_value(c), 9);
        // Re-registration in the fork resolves to the same slot without
        // perturbing the shared name table.
        assert_eq!(f.counter("verdicts.drop"), c);
    }

    #[test]
    fn tracer_disabled_by_default_and_drains() {
        let mut t = Tracer::new();
        t.span("ignored", "test", 0, 1);
        let mut snap = Snapshot::new();
        t.drain_into(&mut snap);
        assert!(snap.spans().is_empty());

        t.set_enabled(true);
        t.span("hop", "netsim", 10, 12);
        t.span("hop", "netsim", 5, 6);
        t.drain_into(&mut snap);
        assert_eq!(snap.spans().len(), 2);
        // Sorted by virtual time on ingest.
        assert_eq!(snap.spans()[0].ts_us, 5);
    }

    #[test]
    fn ring_wraps_without_growing() {
        let mut t = Tracer::with_capacity(4);
        t.set_enabled(true);
        for i in 0..10u64 {
            t.span("s", "c", i, i);
        }
        let mut snap = Snapshot::new();
        t.drain_into(&mut snap);
        assert_eq!(snap.spans().len(), 4);
    }
}
