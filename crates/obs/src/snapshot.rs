//! Snapshots: the ordered, diffable, serializable view of a registry (or
//! of a whole merged system) at one instant.
//!
//! A [`Snapshot`] is sparse — zero counters and empty histograms are
//! omitted, so "absent" and "zero" mean the same thing and merging
//! snapshots whose components saw different events is well defined. All
//! orderings are deterministic: metrics sort by name, spans by
//! `(virtual timestamp, stable scenario index, sequence, category, name)`,
//! which is what makes a parallel sweep's snapshot byte-identical at
//! every `TSPU_THREADS` setting.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::hist::Histogram;

/// One metric's value in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    /// A high-water-mark gauge: merging takes the maximum.
    Gauge(i64),
    /// A last-value gauge (e.g. `policy.epoch`): merging keeps the value
    /// from the later operand, not the larger one — forked cells all
    /// report the same epoch, and "max" would silently turn a rollback
    /// into a lie.
    GaugeLast(i64),
    Hist(Histogram),
}

/// One recorded span. Timestamps are *virtual* microseconds — simulated
/// time is the clock, so identical simulations yield identical spans no
/// matter how long the host took or how work was sharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Virtual start, microseconds since simulation start.
    pub ts_us: u64,
    /// Virtual duration in microseconds (0 for instantaneous work —
    /// packet processing does not advance the virtual clock).
    pub dur_us: u64,
    /// Span name (static so recording never allocates).
    pub name: &'static str,
    /// Category / layer: `"netsim"`, `"device"`, `"sweep"`, …
    pub cat: &'static str,
    /// Stable scenario index: which unit of sharded work produced this
    /// span. 0 for standalone simulations; the sweep stamps it.
    pub scenario: u32,
    /// Per-recorder sequence number: preserves intra-scenario order among
    /// spans sharing a virtual timestamp.
    pub seq: u32,
}

impl SpanRecord {
    /// The deterministic merge-sort key.
    fn key(&self) -> (u64, u32, u32, &'static str, &'static str) {
        (self.ts_us, self.scenario, self.seq, self.cat, self.name)
    }
}

/// An ordered, diffable capture of every metric and span in scope.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Sorted by name; names are hierarchical dot-paths
    /// (`device.<id>.verdicts.rst_rewrite`, `netsim.events_processed`).
    metrics: Vec<(String, MetricValue)>,
    /// Sorted by [`SpanRecord::key`].
    spans: Vec<SpanRecord>,
}

impl Snapshot {
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Inserts (or merges into an existing) metric. Zero counters and
    /// empty histograms are dropped to keep snapshots sparse.
    pub fn insert(&mut self, name: impl Into<String>, value: MetricValue) {
        let dead = match &value {
            MetricValue::Counter(0) => true,
            MetricValue::Hist(h) => h.is_empty(),
            _ => false,
        };
        if dead {
            return;
        }
        let name = name.into();
        match self.metrics.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
            Ok(at) => merge_value(&mut self.metrics[at].1, &value),
            Err(at) => self.metrics.insert(at, (name, value)),
        }
    }

    /// Appends spans (re-sorted lazily by [`Snapshot::merge`] callers via
    /// the sorted invariant kept here).
    pub fn push_spans(&mut self, spans: impl IntoIterator<Item = SpanRecord>) {
        self.spans.extend(spans);
        self.spans.sort_unstable_by_key(|s| s.key());
    }

    /// Stamps every span with a stable scenario index — the sweep calls
    /// this on each per-scenario snapshot before merging, so the merged
    /// trace sorts by `(virtual time, scenario)` whatever worker ran what.
    pub fn with_scenario(mut self, scenario: u32) -> Snapshot {
        for span in &mut self.spans {
            span.scenario = scenario;
        }
        self
    }

    /// Merges `other` in: counters add, gauges take the maximum (the only
    /// commutative-associative choice that keeps "high water mark"
    /// semantics), histograms merge elementwise, spans interleave in
    /// deterministic key order.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.metrics {
            self.insert(name.clone(), value.clone());
        }
        if !other.spans.is_empty() {
            self.spans.extend(other.spans.iter().copied());
            self.spans.sort_unstable_by_key(|s| s.key());
        }
    }

    /// The metrics, sorted by name.
    pub fn metrics(&self) -> &[(String, MetricValue)] {
        &self.metrics
    }

    /// The spans, in deterministic order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Counter value by exact name (0 when absent — snapshots are sparse).
    pub fn counter(&self, name: &str) -> u64 {
        match self.lookup(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by exact name (either gauge kind).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.lookup(name) {
            Some(MetricValue::Gauge(v)) | Some(MetricValue::GaugeLast(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.lookup(name) {
            Some(MetricValue::Hist(h)) => Some(h),
            _ => None,
        }
    }

    fn lookup(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|at| &self.metrics[at].1)
    }

    /// Counters of `self` minus `baseline` (saturating; absent = 0) —
    /// "what moved since the baseline". Gauges and histograms are carried
    /// from `self` unchanged; spans are dropped.
    pub fn counter_delta(&self, baseline: &Snapshot) -> Snapshot {
        let mut out = Snapshot::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let before = baseline.counter(name);
                    out.insert(name.clone(), MetricValue::Counter(v.saturating_sub(before)));
                }
                other => out.insert(name.clone(), other.clone()),
            }
        }
        out
    }

    /// Every nonzero counter, for "which counter moved" reporting.
    pub fn moved_counters(&self) -> Vec<(String, u64)> {
        self.metrics
            .iter()
            .filter_map(|(name, value)| match value {
                MetricValue::Counter(v) if *v > 0 => Some((name.clone(), *v)),
                _ => None,
            })
            .collect()
    }

    /// Deterministic JSON rendering: metrics in name order, then a span
    /// count (full spans go to the Chrome trace, not here). Byte-identical
    /// across runs and thread counts for identical contents.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.metrics.len() * 48);
        out.push_str("{\"metrics\":{");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_string(name));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) | MetricValue::GaugeLast(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Hist(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                        h.count(),
                        h.sum(),
                        h.min().unwrap_or(0),
                        h.max().unwrap_or(0)
                    );
                    for (j, (lower, n)) in h.nonzero_buckets().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{lower},{n}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        let _ = write!(out, "}},\"spans\":{}}}", self.spans.len());
        out
    }

    /// The snapshot in OpenMetrics text exposition (timestampless samples,
    /// terminated by `# EOF`) — the convenience over
    /// [`crate::openmetrics::render`].
    pub fn to_openmetrics(&self) -> String {
        crate::openmetrics::render(self)
    }

    /// Writes the span timeline in the Chrome trace-event JSON format
    /// (one complete-event per line inside the array — loads in
    /// `chrome://tracing` and Perfetto). `ts` is *virtual* microseconds;
    /// `tid` is the stable scenario index, so a sharded campaign renders
    /// one row per scenario regardless of which OS thread ran it.
    pub fn write_chrome_trace<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "[")?;
        for (i, span) in self.spans.iter().enumerate() {
            let comma = if i + 1 < self.spans.len() { "," } else { "" };
            writeln!(w, "{}{comma}", span_event_json(span))?;
        }
        writeln!(w, "]")
    }

    /// The Chrome trace as an in-memory string (tests, small traces).
    pub fn chrome_trace_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_chrome_trace(&mut buf).expect("write to Vec cannot fail");
        String::from_utf8(buf).expect("trace output is ASCII")
    }
}

/// One Chrome complete-event (`"ph":"X"`) object, no trailing comma —
/// shared between [`Snapshot::write_chrome_trace`] and the combined
/// spans-plus-counter-tracks writer in [`crate::series`].
pub(crate) fn span_event_json(span: &SpanRecord) -> String {
    format!(
        "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"seq\":{}}}}}",
        json_string(span.name),
        json_string(span.cat),
        span.ts_us,
        span.dur_us,
        span.scenario,
        span.seq,
    )
}

fn merge_value(into: &mut MetricValue, from: &MetricValue) {
    match (into, from) {
        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
        // Last-value semantics: the later operand wins outright. Merge
        // order is deterministic (index order everywhere snapshots merge),
        // so "later" is well defined and thread-count independent.
        (MetricValue::GaugeLast(a), MetricValue::GaugeLast(b)) => *a = *b,
        (MetricValue::Hist(a), MetricValue::Hist(b)) => a.merge(b),
        // Mixed kinds under one name is a registration bug; keep the
        // existing value rather than panicking in a reporting path.
        _ => {}
    }
}

/// Minimal JSON string escaping (metric and span names are plain ASCII
/// dot-paths in practice, but stay correct for arbitrary input).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_and_sorted() {
        let mut s = Snapshot::new();
        s.insert("b.two", MetricValue::Counter(2));
        s.insert("a.one", MetricValue::Counter(1));
        s.insert("c.zero", MetricValue::Counter(0));
        let names: Vec<&str> = s.metrics().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.one", "b.two"]);
        assert_eq!(s.counter("c.zero"), 0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = Snapshot::new();
        a.insert("x", MetricValue::Counter(2));
        a.insert("g", MetricValue::Gauge(5));
        let mut b = Snapshot::new();
        b.insert("x", MetricValue::Counter(3));
        b.insert("g", MetricValue::Gauge(3));
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.gauge("g"), Some(5));
    }

    #[test]
    fn merge_keeps_the_later_value_for_last_gauges() {
        // The forked-cell scenario the split exists for: cell 0 ends at
        // epoch 4, cell 1 (merged later, in index order) ends at epoch 2
        // after a rollback. A Max gauge would report 4; the last-value
        // kind must report what the later cell actually saw.
        let mut a = Snapshot::new();
        a.insert("policy.epoch", MetricValue::GaugeLast(4));
        a.insert("depth", MetricValue::Gauge(4));
        let mut b = Snapshot::new();
        b.insert("policy.epoch", MetricValue::GaugeLast(2));
        b.insert("depth", MetricValue::Gauge(2));
        a.merge(&b);
        assert_eq!(a.gauge("policy.epoch"), Some(2), "last-value gauge must not max");
        assert_eq!(a.gauge("depth"), Some(4), "high-water gauge still maxes");
    }

    #[test]
    fn delta_names_the_counter_that_moved() {
        let mut before = Snapshot::new();
        before.insert("d.rst", MetricValue::Counter(7));
        let mut after = Snapshot::new();
        after.insert("d.rst", MetricValue::Counter(9));
        after.insert("d.drop", MetricValue::Counter(1));
        let delta = after.counter_delta(&before);
        assert_eq!(delta.moved_counters(), vec![("d.drop".into(), 1), ("d.rst".into(), 2)]);
    }

    #[test]
    fn chrome_trace_is_valid_bracketed_json() {
        let mut s = Snapshot::new();
        s.push_spans([
            SpanRecord { ts_us: 10, dur_us: 0, name: "hop", cat: "netsim", scenario: 1, seq: 2 },
            SpanRecord { ts_us: 5, dur_us: 3, name: "scenario", cat: "sweep", scenario: 0, seq: 0 },
        ]);
        let trace = s.chrome_trace_string();
        assert!(trace.starts_with("[\n"));
        assert!(trace.ends_with("]\n"));
        // Spans sorted by virtual time.
        let first = trace.lines().nth(1).unwrap();
        assert!(first.contains("\"ts\":5"), "{first}");
        assert!(first.ends_with(','), "{first}");
        let second = trace.lines().nth(2).unwrap();
        assert!(!second.ends_with(','), "{second}");
    }

    #[test]
    fn json_is_deterministic() {
        let build = || {
            let mut s = Snapshot::new();
            s.insert("z", MetricValue::Counter(1));
            s.insert("a", MetricValue::Counter(2));
            let mut h = Histogram::new();
            h.record(4);
            h.record(1 << 20);
            s.insert("h", MetricValue::Hist(h));
            s.to_json()
        };
        assert_eq!(build(), build());
        assert!(build().contains("\"a\":2"));
    }
}
