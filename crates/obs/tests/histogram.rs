//! Satellite coverage for the log-linear histogram: exact power-of-two
//! bucket boundaries, associative/commutative merge (proptest), and no
//! overflow at `u64::MAX`.

use proptest::prelude::*;
use tspu_obs::{bucket_index, bucket_lower, Histogram, BUCKETS};

#[test]
fn power_of_two_boundaries_are_exact() {
    for k in 0..64u32 {
        let v = 1u64 << k;
        let i = bucket_index(v);
        assert_eq!(bucket_lower(i), v, "1<<{k} must start its own bucket");
        // The value just below the power of two lands in an earlier bucket.
        if v > 1 {
            assert!(bucket_index(v - 1) < i, "{} and {} share a bucket", v - 1, v);
        }
    }
}

#[test]
fn bucket_lower_is_the_true_lower_bound() {
    for i in 0..BUCKETS {
        let lower = bucket_lower(i);
        assert_eq!(bucket_index(lower), i, "bucket_lower({i}) must map back");
        if lower > 0 {
            assert!(bucket_index(lower - 1) < i);
        }
    }
}

#[test]
fn u64_max_recording_does_not_overflow() {
    let mut h = Histogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX);
    h.record(0);
    assert_eq!(h.count(), 3);
    assert_eq!(h.sum(), 2 * (u64::MAX as u128));
    assert_eq!(h.max(), Some(u64::MAX));
    assert_eq!(h.min(), Some(0));
    assert!(bucket_index(u64::MAX) < BUCKETS);
    // The top quantile reports the bucket holding u64::MAX.
    assert_eq!(h.quantile_lower(1.0), bucket_lower(bucket_index(u64::MAX)));
}

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(a in proptest::collection::vec(any::<u64>(), 0..64),
                            b in proptest::collection::vec(any::<u64>(), 0..64)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in proptest::collection::vec(any::<u64>(), 0..32),
                            b in proptest::collection::vec(any::<u64>(), 0..32),
                            c in proptest::collection::vec(any::<u64>(), 0..32)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_recording_everything(a in proptest::collection::vec(any::<u64>(), 0..64),
                                         b in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let together: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, hist_of(&together));
    }

    #[test]
    fn every_value_lands_in_range_and_bounds_hold(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower(i) <= v);
        if i + 1 < BUCKETS {
            prop_assert!(v < bucket_lower(i + 1));
        }
    }
}
