//! The legacy in-path keyword DPI some ISPs deployed before the TSPU era
//! (§2: "Previous work has found ISPs in Russia implemented different
//! blocking mechanisms with varying efficacy, such as keyword filtering
//! or DNS censorship" — citing Ramesh et al.'s decentralized-control
//! study).
//!
//! Unlike the TSPU this box is ISP-specific commodity gear: it inspects
//! plaintext HTTP only (port 80), matches the Host header against the
//! ISP's own list, and silently swallows matching requests (timeout-style
//! blocking, one of the low-efficacy mechanisms the NDSS'20 study
//! catalogued). Its blindness to HTTPS and its *non-uniformity* across
//! ISPs are exactly what §5.1 uses to separate ISP blocking from TSPU
//! blocking.

use std::collections::HashSet;

use tspu_core::policy::DomainSet;
use tspu_netsim::{Direction, Middlebox, Time, Verdict};
use tspu_wire::http::HttpRequest;
use tspu_wire::ipv4::{Ipv4Packet, Protocol};
use tspu_wire::tcp::TcpSegment;

/// The keyword-filtering middlebox.
pub struct HttpKeywordDpi {
    isp: String,
    blocklist: DomainSet,
    /// Requests intercepted so far.
    pub intercepted: u64,
}

impl HttpKeywordDpi {
    /// Creates the DPI with the ISP's own list snapshot.
    pub fn new(isp: &str, blocklist: HashSet<String>) -> HttpKeywordDpi {
        HttpKeywordDpi {
            isp: isp.to_string(),
            blocklist: DomainSet::from_names(blocklist),
            intercepted: 0,
        }
    }

    fn lists(&self, host: &str) -> bool {
        self.blocklist.matches(host)
    }
}

impl Middlebox for HttpKeywordDpi {
    fn process(&mut self, _now: Time, direction: Direction, packet: &mut Vec<u8>) -> Verdict {
        if direction != Direction::LocalToRemote {
            return Verdict::Pass;
        }
        let Ok(ip) = Ipv4Packet::new_checked(&packet[..]) else {
            return Verdict::Pass;
        };
        if ip.protocol() != Protocol::Tcp || ip.is_fragment() {
            return Verdict::Pass;
        }
        let Ok(segment) = TcpSegment::new_checked(ip.payload()) else {
            return Verdict::Pass;
        };
        if segment.dst_port() != 80 || segment.payload().is_empty() {
            return Verdict::Pass;
        }
        let Ok(request) = HttpRequest::parse(segment.payload()) else {
            return Verdict::Pass;
        };
        let Some(host) = request.host else {
            return Verdict::Pass;
        };
        if !self.lists(&host) {
            return Verdict::Pass;
        }
        // Swallow the offending request: the client times out — the
        // blunt, cheap blocking the pre-TSPU era was known for.
        self.intercepted += 1;
        Verdict::Drop
    }

    fn label(&self) -> String {
        format!("http-keyword-dpi({})", self.isp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use tspu_wire::ipv4::Ipv4Repr;
    use tspu_wire::tcp::{TcpFlags, TcpRepr};

    fn dpi() -> HttpKeywordDpi {
        let mut list = HashSet::new();
        list.insert("blocked.ru".to_string());
        HttpKeywordDpi::new("LegacyISP", list)
    }

    fn http_get(host: &str, port: u16) -> Vec<u8> {
        let payload = HttpRequest::get(host, "/").build();
        let mut tcp = TcpRepr::new(40_000, port, TcpFlags::PSH_ACK);
        tcp.payload = payload;
        let src = Ipv4Addr::new(10, 0, 0, 2);
        let dst = Ipv4Addr::new(203, 0, 113, 8);
        let seg = tcp.build(src, dst);
        Ipv4Repr::new(src, dst, Protocol::Tcp, seg.len()).build(&seg)
    }

    #[test]
    fn blocked_host_request_swallowed() {
        let mut dpi = dpi();
        let out = dpi.process_owned(Time::ZERO, Direction::LocalToRemote, http_get("blocked.ru", 80));
        assert!(out.is_empty());
        assert_eq!(dpi.intercepted, 1);
    }

    #[test]
    fn subdomain_also_intercepted() {
        let mut dpi = dpi();
        assert!(dpi
            .process_owned(Time::ZERO, Direction::LocalToRemote, http_get("www.blocked.ru", 80))
            .is_empty());
    }

    #[test]
    fn clean_host_passes() {
        let mut dpi = dpi();
        let packet = http_get("open.ru", 80);
        assert_eq!(dpi.process_owned(Time::ZERO, Direction::LocalToRemote, packet.clone()), vec![packet]);
        assert_eq!(dpi.intercepted, 0);
    }

    #[test]
    fn https_is_invisible_to_the_legacy_box() {
        // The same "request" on port 443 sails through: this box predates
        // SNI filtering — which is why the TSPU was needed at all.
        let mut dpi = dpi();
        let https = http_get("blocked.ru", 443);
        assert_eq!(dpi.process_owned(Time::ZERO, Direction::LocalToRemote, https).len(), 1);
    }

    #[test]
    fn inbound_traffic_untouched() {
        let mut dpi = dpi();
        assert_eq!(
            dpi.process_owned(Time::ZERO, Direction::RemoteToLocal, http_get("blocked.ru", 80)).len(),
            1
        );
    }
}
