//! The censoring resolver as a packet-level host application: UDP/53
//! A-queries in, real DNS responses out — with the blockpage address
//! substituted for listed names, exactly what §6.2 measures by "send[ing]
//! queries … once from the RU vantage points and once from US measurement
//! machines".

use std::collections::HashMap;
use std::net::Ipv4Addr;

use tspu_netsim::{Application, Output, Time};
use tspu_wire::dns::{DnsQuery, DnsResponse, QTYPE_A};
use tspu_wire::ipv4::{Ipv4Packet, Ipv4Repr, Protocol};
use tspu_wire::udp::{UdpDatagram, UdpRepr};

use crate::IspResolver;

/// A DNS server host running one ISP's censoring resolver.
pub struct DnsResolverApp {
    addr: Ipv4Addr,
    resolver: IspResolver,
    /// The "real" zone: what an honest resolver would answer.
    zone: HashMap<String, Ipv4Addr>,
    queries_served: u64,
}

impl DnsResolverApp {
    /// Creates the server at `addr` backed by `resolver`, answering from
    /// `zone` for unlisted names (NXDOMAIN when absent there too).
    pub fn new(addr: Ipv4Addr, resolver: IspResolver, zone: HashMap<String, Ipv4Addr>) -> Self {
        DnsResolverApp { addr, resolver, zone, queries_served: 0 }
    }

    /// Queries answered so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }
}

impl Application for DnsResolverApp {
    fn on_packet(&mut self, _now: Time, packet: &[u8]) -> Vec<Output> {
        let Ok(ip) = Ipv4Packet::new_checked(packet) else {
            return Vec::new();
        };
        if ip.protocol() != Protocol::Udp || ip.is_fragment() {
            return Vec::new();
        }
        let Ok(udp) = UdpDatagram::new_checked(ip.payload()) else {
            return Vec::new();
        };
        if udp.dst_port() != 53 {
            return Vec::new();
        }
        let Ok(query) = DnsQuery::parse(udp.payload()) else {
            return Vec::new();
        };
        self.queries_served += 1;
        let response = if query.qtype != QTYPE_A {
            DnsResponse::nxdomain(&query)
        } else if self.resolver.lists(&query.qname) {
            // The censorship: a blockpage A record for listed names.
            DnsResponse::answer(&query, &[self.resolver.blockpage_addr()])
        } else {
            match self.zone.get(&query.qname) {
                Some(real) => DnsResponse::answer(&query, &[*real]),
                None => DnsResponse::nxdomain(&query),
            }
        };
        let payload = response.build();
        let datagram = UdpRepr::new(53, udp.src_port(), payload).build(self.addr, ip.src_addr());
        let reply = Ipv4Repr::new(self.addr, ip.src_addr(), Protocol::Udp, datagram.len())
            .build(&datagram);
        vec![Output::send(reply)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tspu_netsim::{Network, Route};
    use tspu_wire::dns::DnsQuery;

    const RESOLVER_ADDR: Ipv4Addr = Ipv4Addr::new(10, 20, 0, 53);
    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 20, 0, 2);
    const BLOCKPAGE: Ipv4Addr = Ipv4Addr::new(93, 120, 2, 80);
    const REAL: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 5);

    fn setup() -> (Network, tspu_netsim::HostId, tspu_netsim::HostId) {
        let mut list = HashSet::new();
        list.insert("blocked.ru".to_string());
        let resolver = IspResolver::new("ER-Telecom", list, BLOCKPAGE);
        let mut zone = HashMap::new();
        zone.insert("blocked.ru".to_string(), REAL);
        zone.insert("open.ru".to_string(), REAL);
        let mut net = Network::with_default_latency();
        let client = net.add_host(CLIENT);
        let server = net.add_host_with_app(
            RESOLVER_ADDR,
            Box::new(DnsResolverApp::new(RESOLVER_ADDR, resolver, zone)),
        );
        net.set_route_symmetric(client, server, Route::direct());
        (net, client, server)
    }

    fn resolve(net: &mut Network, client: tspu_netsim::HostId, name: &str) -> DnsResponse {
        let query = DnsQuery { id: 0x77, qname: name.into(), qtype: QTYPE_A };
        let datagram = UdpRepr::new(5353, 53, query.build()).build(CLIENT, RESOLVER_ADDR);
        let packet = Ipv4Repr::new(CLIENT, RESOLVER_ADDR, Protocol::Udp, datagram.len())
            .build(&datagram);
        net.send_from(client, packet);
        net.run_until_idle();
        let inbox = net.take_inbox(client);
        let ip = Ipv4Packet::new_checked(&inbox[0].1[..]).unwrap();
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        DnsResponse::parse(udp.payload()).unwrap()
    }

    #[test]
    fn listed_name_gets_blockpage_a_record() {
        let (mut net, client, _server) = setup();
        let response = resolve(&mut net, client, "blocked.ru");
        assert_eq!(response.answers, vec![BLOCKPAGE]);
        assert_eq!(response.id, 0x77);
    }

    #[test]
    fn unlisted_name_resolves_from_zone() {
        let (mut net, client, _server) = setup();
        let response = resolve(&mut net, client, "open.ru");
        assert_eq!(response.answers, vec![REAL]);
    }

    #[test]
    fn unknown_name_nxdomain() {
        let (mut net, client, _server) = setup();
        let response = resolve(&mut net, client, "nosuch.ru");
        assert_eq!(response.rcode, tspu_wire::dns::RCODE_NXDOMAIN);
        assert!(response.answers.is_empty());
    }

    #[test]
    fn subdomain_of_listed_name_blockpaged() {
        let (mut net, client, _server) = setup();
        let response = resolve(&mut net, client, "www.blocked.ru");
        assert_eq!(response.answers, vec![BLOCKPAGE]);
    }
}
