//! # tspu-ispdpi
//!
//! The *decentralized* baseline the TSPU superseded: per-ISP blocking with
//! per-ISP blocklists (§2, §6.2).
//!
//! The paper observes that at residential ISPs "a single ISP-implemented
//! blocking method dominates": DNS resolvers returning the IP of the
//! ISP's own blockpage for registry-listed names, consistent with
//! Roskomnadzor's guidelines. Each ISP maintains its own (often stale)
//! snapshot of the registry, so coverage differs per ISP — the very
//! non-uniformity §5.1 uses to tell ISP blocking apart from the TSPU.
//!
//! [`IspResolver`] is the query-level policy object; [`DnsResolverApp`]
//! wraps it as a packet-level UDP/53 server for end-to-end runs. The
//! blockpage HTTP behavior is modeled as a canned response server in
//! `tspu-stack`.

pub mod keyword_dpi;
pub mod resolver_app;
pub mod update_lag;

use std::collections::HashSet;
use std::net::Ipv4Addr;

use tspu_core::policy::DomainSet;

pub use keyword_dpi::HttpKeywordDpi;
pub use resolver_app::DnsResolverApp;
pub use update_lag::UpdateLag;

/// What a resolver answered for a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The real address (resolution untouched).
    Normal(Ipv4Addr),
    /// The ISP's blockpage address was substituted.
    Blockpage(Ipv4Addr),
}

impl Resolution {
    /// The address a client would connect to.
    pub fn addr(self) -> Ipv4Addr {
        match self {
            Resolution::Normal(a) | Resolution::Blockpage(a) => a,
        }
    }

    /// True if this resolution was censored.
    pub fn is_blocked(self) -> bool {
        matches!(self, Resolution::Blockpage(_))
    }
}

/// A residential ISP's censoring resolver.
///
/// "ISPs' DNS resolvers would return IPs pointing to the ISP's blockpage,
/// which is different from ISP to ISP" (§6.2) — hence the per-ISP
/// `blockpage_addr`. The paper also finds resolvers answer identically to
/// queries from inside and outside the ISP, which holds here trivially:
/// resolution does not depend on the querier.
#[derive(Clone)]
pub struct IspResolver {
    isp: String,
    blocklist: DomainSet,
    blockpage_addr: Ipv4Addr,
}

impl IspResolver {
    /// Creates a resolver for `isp` with its own blocklist snapshot and
    /// blockpage address.
    pub fn new(isp: &str, blocklist: HashSet<String>, blockpage_addr: Ipv4Addr) -> IspResolver {
        IspResolver {
            isp: isp.to_string(),
            blocklist: DomainSet::from_names(blocklist),
            blockpage_addr,
        }
    }

    /// The ISP's name.
    pub fn isp(&self) -> &str {
        &self.isp
    }

    /// The blockpage address this ISP uses.
    pub fn blockpage_addr(&self) -> Ipv4Addr {
        self.blockpage_addr
    }

    /// Number of names on this ISP's list.
    pub fn blocklist_len(&self) -> usize {
        self.blocklist.len()
    }

    /// True if the ISP's snapshot lists `name` (exact or parent domain,
    /// like the registry's own matching). Delegates to the shared
    /// allocation-free suffix matcher.
    pub fn lists(&self, name: &str) -> bool {
        self.blocklist.matches(name)
    }

    /// Resolves `name`, substituting the blockpage for listed names.
    pub fn resolve(&self, name: &str, real_addr: Ipv4Addr) -> Resolution {
        if self.lists(name) {
            Resolution::Blockpage(self.blockpage_addr)
        } else {
            Resolution::Normal(real_addr)
        }
    }
}

/// Builds an ISP resolver from a registry dump (the z-i format of
/// `tspu_registry::export`) as of the ISP's last sync date — the paper's
/// staleness (§6.3: resolvers "do not enforce blocking effectively on
/// domains recently added to the registry") expressed as a date.
pub fn resolver_from_dump(
    isp: &str,
    dump: &str,
    sync_day: u32,
    blockpage_addr: Ipv4Addr,
) -> IspResolver {
    let entries = tspu_registry::export::parse(dump);
    let list = tspu_registry::export::snapshot_as_of(&entries, sync_day);
    IspResolver::new(isp, list, blockpage_addr)
}

/// Builds the three vantage-point ISP resolvers of the paper from a
/// universe's per-ISP lists, with distinct blockpage addresses.
pub fn vantage_resolvers(universe: &tspu_registry::Universe) -> Vec<IspResolver> {
    let blockpages = [
        ("Rostelecom", Ipv4Addr::new(95, 165, 1, 80)),
        ("ER-Telecom", Ipv4Addr::new(93, 120, 2, 80)),
        ("OBIT", Ipv4Addr::new(85, 93, 3, 80)),
    ];
    blockpages
        .into_iter()
        .map(|(isp, addr)| {
            let list = universe
                .blocks
                .isp_resolver
                .get(isp)
                .cloned()
                .unwrap_or_default();
            IspResolver::new(isp, list, addr)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const REAL: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 77);

    fn resolver() -> IspResolver {
        let mut list = HashSet::new();
        list.insert("blocked.ru".to_string());
        list.insert("casino-site.com".to_string());
        IspResolver::new("TestISP", list, Ipv4Addr::new(10, 10, 10, 10))
    }

    #[test]
    fn blocked_name_gets_blockpage() {
        let r = resolver();
        let res = r.resolve("blocked.ru", REAL);
        assert!(res.is_blocked());
        assert_eq!(res.addr(), Ipv4Addr::new(10, 10, 10, 10));
    }

    #[test]
    fn subdomain_of_listed_name_blocked() {
        let r = resolver();
        assert!(r.resolve("www.blocked.ru", REAL).is_blocked());
        assert!(!r.resolve("notblocked.ru", REAL).is_blocked());
    }

    #[test]
    fn unlisted_name_resolves_normally() {
        let r = resolver();
        let res = r.resolve("kernel.org", REAL);
        assert!(!res.is_blocked());
        assert_eq!(res.addr(), REAL);
    }

    #[test]
    fn vantage_resolvers_have_distinct_blockpages_and_stale_lists() {
        let universe = tspu_registry::Universe::generate(1);
        let resolvers = vantage_resolvers(&universe);
        assert_eq!(resolvers.len(), 3);
        let mut addrs: Vec<_> = resolvers.iter().map(|r| r.blockpage_addr()).collect();
        addrs.dedup();
        assert_eq!(addrs.len(), 3, "each ISP uses its own blockpage");
        // Staleness ordering from §6.3: Rostelecom < OBIT on recent names.
        let blocked_recent = |r: &IspResolver| {
            universe
                .registry_sample
                .iter()
                .filter(|d| r.lists(&d.name))
                .count()
        };
        let rostelecom = blocked_recent(&resolvers[0]);
        let obit = blocked_recent(&resolvers[2]);
        assert!(rostelecom < obit, "{rostelecom} vs {obit}");
    }

    #[test]
    fn resolution_is_querier_independent() {
        // §6.2: "We find no difference in responses between the two cases"
        // (queries from inside the ISP vs from the US). Resolution here is
        // a pure function of the name — assert the API admits no such
        // dependence by resolving twice.
        let r = resolver();
        assert_eq!(r.resolve("blocked.ru", REAL), r.resolve("blocked.ru", REAL));
    }
}

#[cfg(test)]
mod dump_tests {
    use super::*;

    #[test]
    fn dump_based_resolver_matches_sync_date_staleness() {
        let universe = tspu_registry::Universe::generate(5);
        let dump = tspu_registry::export::export(&universe);
        let stale = resolver_from_dump("StaleISP", &dump, 15, Ipv4Addr::new(10, 0, 0, 80));
        let fresh = resolver_from_dump("FreshISP", &dump, 120, Ipv4Addr::new(10, 0, 1, 80));
        let coverage = |r: &IspResolver| {
            universe
                .registry_sample
                .iter()
                .filter(|d| r.lists(&d.name))
                .count()
        };
        let stale_cov = coverage(&stale);
        let fresh_cov = coverage(&fresh);
        assert!(stale_cov < fresh_cov, "{stale_cov} vs {fresh_cov}");
        // A domain added after the stale sync but before the fresh one is
        // missed by the stale ISP only. (Days run 0..130, so a plain
        // `> 100` check can land past the fresh sync date too.)
        let late = universe
            .registry_sample
            .iter()
            .find(|d| {
                let day = d.registry_added_day.unwrap();
                day > 15 && day <= 120
            })
            .unwrap();
        assert!(!stale.lists(&late.name));
        assert!(fresh.lists(&late.name));
    }
}
