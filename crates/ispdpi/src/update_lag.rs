//! Registry-sync lag: how long after a central registry delta each ISP's
//! own gear starts enforcing it.
//!
//! §6.3 finds ISP resolvers "do not enforce blocking effectively on
//! domains recently added to the registry" — each ISP syncs its registry
//! snapshot on its own schedule, so a freshly listed domain stays
//! reachable through ISP blocking for days while the TSPU (one centrally
//! distributed policy) converges within a round trip. [`UpdateLag`] is
//! that schedule as a configurable distribution: a per-ISP, per-delta lag
//! drawn deterministically from a seed, so churn campaigns can model the
//! decentralized baseline without simulating three resolver fleets
//! packet-by-packet.

use std::time::Duration;

/// A deterministic lag distribution: `base + uniform[0, jitter)`,
/// sampled per `(isp, delta index)` from `seed`. No RNG state — every
/// sample is a pure hash of its coordinates, so campaign cells can ask
/// for lags in any order (or in parallel) and agree byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateLag {
    /// Minimum lag every ISP pays (distribution offset).
    pub base: Duration,
    /// Width of the uniform jitter added on top.
    pub jitter: Duration,
    pub seed: u64,
}

impl UpdateLag {
    /// The 2022 registry-sync picture scaled to a churn replay where one
    /// registry day lasts `day`: ISPs pick up a delta after 1 to 21 days
    /// (§6.3's staleness window).
    pub fn registry_sync_2022(day: Duration) -> UpdateLag {
        UpdateLag { base: day, jitter: day * 20, seed: 0 }
    }

    /// The lag `isp` pays on delta `delta_index`.
    pub fn lag(&self, isp: &str, delta_index: usize) -> Duration {
        let jitter_ns = self.jitter.as_nanos() as u64;
        if jitter_ns == 0 {
            return self.base;
        }
        let mut h = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for byte in isp.bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= delta_index as u64;
        // splitmix64 finalizer over the FNV-1a digest.
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        self.base + Duration::from_nanos(h % jitter_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_is_deterministic_and_bounded() {
        let lag = UpdateLag::registry_sync_2022(Duration::from_millis(200));
        for isp in ["Rostelecom", "ER-Telecom", "OBIT"] {
            for delta in 0..50 {
                let sample = lag.lag(isp, delta);
                assert_eq!(sample, lag.lag(isp, delta));
                assert!(sample >= lag.base);
                assert!(sample < lag.base + lag.jitter);
            }
        }
    }

    #[test]
    fn isps_and_deltas_draw_different_lags() {
        let lag = UpdateLag::registry_sync_2022(Duration::from_millis(200));
        assert_ne!(lag.lag("Rostelecom", 0), lag.lag("OBIT", 0));
        assert_ne!(lag.lag("Rostelecom", 0), lag.lag("Rostelecom", 1));
    }

    #[test]
    fn zero_jitter_collapses_to_base() {
        let lag = UpdateLag { base: Duration::from_secs(1), jitter: Duration::ZERO, seed: 7 };
        assert_eq!(lag.lag("AnyISP", 42), Duration::from_secs(1));
    }
}
