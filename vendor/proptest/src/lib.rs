//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`], [`arbitrary::any`], [`collection::vec`], range and
//! tuple strategies, `Just`, and a minimal `[class]{m,n}` regex string
//! strategy.
//!
//! Differences from the real crate, deliberate and documented:
//!
//! * **No shrinking.** A failing case panics with the standard assert
//!   message; inputs are reproducible because every test's stream is
//!   seeded from the test's name (plus `PROPTEST_SEED` when set).
//! * **Fixed case count** (default 64, override with `PROPTEST_CASES`).
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A generator of values for property tests.
    ///
    /// Unlike the real crate there is no value tree: `generate` draws a
    /// fresh value directly from the RNG.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(pub Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies ([`prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// `&'static str` patterns of the form `[class]{m,n}` (optionally a
    /// sequence of class/literal atoms) act as string strategies — the
    /// only regex feature the workspace's tests use.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut SmallRng) -> String {
        let bytes = pattern.as_bytes();
        let mut out = String::new();
        let mut i = 0;
        while i < bytes.len() {
            // One atom: a char class or a literal byte…
            let alphabet: Vec<char> = if bytes[i] == b'[' {
                let close = pattern[i..]
                    .find(']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = &pattern[i + 1..close];
                i = close + 1;
                expand_class(class)
            } else {
                let c = pattern[i..].chars().next().unwrap();
                i += c.len_utf8();
                vec![c]
            };
            // …followed by an optional {m,n} / {n} repetition.
            let (min, max) = if i < bytes.len() && bytes[i] == b'{' {
                let close = pattern[i..]
                    .find('}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let spec = &pattern[i + 1..close];
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("repeat min"),
                        hi.trim().parse::<usize>().expect("repeat max"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out
    }

    fn expand_class(class: &str) -> Vec<char> {
        let chars: Vec<char> = class.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                assert!(lo <= hi, "bad class range in [{class}]");
                for c in lo..=hi {
                    out.push(char::from_u32(c).unwrap());
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty char class in [{class}]");
        out
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::{Rng, StandardSample};

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: StandardSample {}
    impl<T: StandardSample> Arbitrary for T {}

    /// The canonical strategy for `T` (whole-domain uniform).
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen::<T>()
        }
    }

    /// `any::<T>()` — the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Length bounds for [`vec`], convertible from ranges and constants.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Number of cases each property runs (`PROPTEST_CASES` overrides).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }

    /// Runs `body` for the configured number of cases with a stream
    /// seeded from the test name (xor `PROPTEST_SEED` when set).
    pub fn run_cases<F: FnMut(&mut SmallRng)>(name: &str, mut body: F) {
        let extra: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut rng = SmallRng::seed_from_u64(fnv1a(name.as_bytes()) ^ extra);
        for _ in 0..cases() {
            body(&mut rng);
        }
    }
}

/// Declares property tests: each parameter is drawn from its strategy
/// anew for every case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                });
            }
        )+
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

/// Property-scoped assertion (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-scoped inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro wires strategies, tuples, vecs, and regex patterns.
        #[test]
        fn macro_end_to_end(x in 3u8..=9, pair in (0usize..4, any::<bool>()),
                            v in crate::collection::vec(any::<u16>(), 2..5),
                            s in "[a-c.]{1,8}") {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '.')));
        }

        #[test]
        fn oneof_and_map(flag in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)]) {
            prop_assert!(matches!(flag, 1 | 2 | 5 | 6));
        }
    }

    #[test]
    fn deterministic_given_same_name() {
        use crate::strategy::Strategy;
        let collect = || {
            let mut out = Vec::new();
            crate::test_runner::run_cases("stream", |rng| {
                out.push((0u32..1000).generate(rng));
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
