//! Offline stand-in for the subset of `criterion` this workspace uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`],
//! [`criterion_group!`] / [`criterion_main!`], and [`black_box`].
//!
//! It is a real timing harness, not a no-op: each benchmark is
//! calibrated to a target measurement time, run in batches, and the
//! median ns/iter is printed. Two environment knobs:
//!
//! * `BENCH_JSON=<path>` — append one JSON line per benchmark:
//!   `{"id":"group/name","ns_per_iter":<f64>,"iters":<u64>}`.
//! * `BENCH_QUICK=1` — shrink measurement time ~20× for smoke runs.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Units-per-iteration annotation; recorded but only used for display.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost; the stub times the routine
/// alone regardless, so the variants only pick the batch size.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 256,
            BatchSize::LargeInput => 16,
            BatchSize::PerIteration => 1,
        }
    }
}

pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let quick = std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
        Criterion {
            measurement: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(1000)
            },
        }
    }
}

impl Criterion {
    /// Kept for CLI-parity with the real crate; args are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Criterion {
        run_benchmark(id.as_ref().to_string(), self.measurement, None, f);
        self
    }

    /// No-op in the stub (the real crate writes reports here).
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            format!("{}/{}", self.name, id.as_ref()),
            self.criterion.measurement,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Handed to each benchmark closure; call [`iter`](Bencher::iter) or
/// [`iter_batched`](Bencher::iter_batched) exactly once.
pub struct Bencher {
    measurement: Duration,
    /// Median nanoseconds per iteration, filled in by iter/iter_batched.
    result_ns: f64,
    total_iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1/50 of the budget?
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                hint_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement / 50 || n >= 1 << 30 {
                break;
            }
            n = n.saturating_mul(2);
        }
        // Measure: timed batches of n until the budget is spent.
        let mut samples = Vec::new();
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline || samples.is_empty() {
            let start = Instant::now();
            for _ in 0..n {
                hint_black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / n as f64);
            iters += n;
            if samples.len() >= 200 {
                break;
            }
        }
        self.record(samples, iters);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len();
        let mut samples = Vec::new();
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline || samples.is_empty() {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                hint_black_box(routine(input));
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
            iters += batch as u64;
            if samples.len() >= 2000 {
                break;
            }
        }
        self.record(samples, iters);
    }

    fn record(&mut self, mut samples: Vec<f64>, iters: u64) {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.result_ns = samples[samples.len() / 2];
        self.total_iters = iters;
    }
}

/// Reports a custom scalar (e.g. a tail latency) in the same format and
/// JSON stream as regular benchmarks. Not part of the real criterion API;
/// benches use it for statistics a median-reporting harness cannot express.
pub fn report_custom(id: &str, ns_per_iter: f64, iters: u64) {
    println!("bench: {id:<55} {ns_per_iter:>12.1} ns/iter");
    write_json_line(id, ns_per_iter, iters);
}

fn write_json_line(id: &str, ns: f64, iters: u64) {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"id\":\"{}\",\"ns_per_iter\":{:.2},\"iters\":{}}}",
                    id.replace('"', "'"),
                    ns,
                    iters
                );
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: String,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        measurement,
        result_ns: f64::NAN,
        total_iters: 0,
    };
    f(&mut b);
    let ns = b.result_ns;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.3} Melem/s", n as f64 / ns * 1000.0),
        Throughput::Bytes(n) => format!("  {:.3} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0)),
    });
    println!(
        "bench: {id:<55} {ns:>12.1} ns/iter{}",
        rate.unwrap_or_default()
    );
    write_json_line(&id, ns, b.total_iters);
}

/// Declares a benchmark group function, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(1));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        std::env::set_var("BENCH_QUICK", "1");
        criterion_group!(benches, work);
        benches();
    }
}
