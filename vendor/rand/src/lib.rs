//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64 — the same
//! generator the real `small_rng` feature selects on 64-bit targets),
//! [`Rng`] (`gen`, `gen_bool`, `gen_range`), [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the three external dependencies as API-compatible
//! in-repo crates. Determinism is the only contract the workspace relies
//! on: every consumer seeds explicitly with `seed_from_u64`, and the
//! streams here are fixed forever by this file. The streams do *not*
//! bit-match the real `rand` crate's (no test depends on that — tests
//! assert statistical, not stream-exact, properties).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain
/// (the `Standard` distribution of the real crate).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64 as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-domain range: every value is fair.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++, the generator the real crate's `small_rng` feature
    /// uses on 64-bit platforms. Small state, fast, not cryptographic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity; the workspace only uses [`SmallRng`].
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice sampling helpers (`choose`, `shuffle`).
    pub trait SliceRandom {
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u8..=8);
            assert!((5..=8).contains(&w));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn slice_helpers() {
        let mut rng = SmallRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut deck: Vec<u32> = (0..52).collect();
        deck.shuffle(&mut rng);
        let mut sorted = deck.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..52).collect::<Vec<_>>());
        assert_ne!(deck, sorted, "a 52-card shuffle virtually never sorts");
    }
}
