//! The paper's headline claims, each asserted end-to-end against the
//! reproduction — the executable summary of EXPERIMENTS.md.

use tspu::measure::timeouts;
use tspu::registry::Universe;
use tspu::topology::VantageLab;

fn lab(seed: u64) -> VantageLab {
    VantageLab::builder().universe(&Universe::generate(seed)).table1().build()
}

#[test]
fn claim_tspu_is_stateful_with_nonstandard_timeouts() {
    // §5.3.3 + Table 7: the TSPU's timeouts match no documented system.
    let mut lab = lab(90);
    let rows = timeouts::table2_state_rows();
    let measured: Vec<u64> = rows
        .iter()
        .enumerate()
        .map(|(i, row)| timeouts::measure_table2_row(&mut lab, row, 10_000 + i as u16 * 800).unwrap())
        .collect();
    // 60 / 105 / 480 within measurement slack.
    assert!(measured[0].abs_diff(60) <= 5, "{measured:?}");
    assert!(measured[1].abs_diff(105) <= 5, "{measured:?}");
    assert!(measured[2].abs_diff(480) <= 5, "{measured:?}");
    assert!(!tspu::measure::os_reference::any_system_matches_tspu());
}

#[test]
fn claim_censorship_is_asymmetric() {
    // §5.3.2: only connections originating inside Russia are blocked.
    use tspu::measure::behaviors::{classify_behavior, ObservedBehavior};
    use tspu::measure::harness::{ProbeSide, ScriptEnd, ScriptStep};
    use tspu::wire::tcp::TcpFlags;

    let mut lab = lab(91);
    let vantage = lab.vantage("ER-Telecom");
    let local = ScriptEnd { host: vantage.host, addr: vantage.addr, port: 11_000 };
    let remote = ScriptEnd { host: lab.us_main, addr: lab.us_main_addr, port: 443 };
    // A remote-initiated connection carrying the same trigger is exempt.
    let remote_first = vec![
        ScriptStep::new(ProbeSide::Remote, TcpFlags::SYN),
        ScriptStep::new(ProbeSide::Local, TcpFlags::SYN_ACK),
        ScriptStep::new(ProbeSide::Remote, TcpFlags::ACK),
    ];
    let behavior = classify_behavior(
        &mut lab.net,
        local,
        remote,
        &remote_first,
        tspu::wire::tls::ClientHelloBuilder::new("twitter.com").build(),
    );
    assert_eq!(behavior, ObservedBehavior::Pass);
}

#[test]
fn claim_fragment_cache_fingerprint_is_45() {
    // §5.3.1/§7.2: 45 fragments pass, 46 die — unlike Linux (64),
    // Cisco (24), Juniper (250).
    use tspu::core::frag_cache::{FragCache, FragConfig};
    use tspu::netsim::Time;
    use tspu::wire::frag;
    use tspu::wire::ipv4::{Ipv4Repr, Protocol};

    let payload = vec![1u8; 1480];
    let mut repr = Ipv4Repr::new(
        std::net::Ipv4Addr::new(10, 0, 0, 1),
        std::net::Ipv4Addr::new(203, 0, 113, 2),
        Protocol::Tcp,
        payload.len(),
    );
    repr.ident = 3;
    let datagram = repr.build(&payload);
    for (pieces, expect) in [(24usize, true), (45, true), (46, false), (64, false)] {
        let mut cache = FragCache::new(FragConfig::default());
        let fragments = frag::fragment_into(&datagram, pieces).unwrap();
        let mut out = Vec::new();
        for f in &fragments {
            out = cache.offer(Time::ZERO, f);
        }
        assert_eq!(!out.is_empty(), expect, "{pieces} fragments");
    }
}

#[test]
fn claim_green_sequences_evade_sni1_but_not_sni4() {
    use tspu::measure::sequences;
    let mut lab = lab(92);
    let verdicts = sequences::explore(&mut lab, 2, "ER-Telecom");
    let find = |n: &str| verdicts.iter().find(|v| v.notation == n).unwrap();
    assert!(find("Ls;Rs").green());
    assert!(!find("Ls;Rs").sni1_valid());
    assert!(find("Ls").sni1_valid());
    assert!(!find("Rs").sni1_valid());
    assert!(!find("Rs").green());
}

#[test]
fn claim_out_registry_blocking_exists() {
    // §5.2/§6.3: the TSPU blocks resources absent from any ISP list
    // (play.google.com, the Tor node's IP).
    let universe = Universe::generate(93);
    let lab = VantageLab::builder().universe(&universe).table1().build();
    for resolver in &lab.resolvers {
        assert!(!resolver.lists("play.google.com"));
        assert!(!resolver.lists("nordvpn.com"));
    }
    let policy = lab.policy.read();
    assert!(policy.sni_slow.matches("play.google.com"));
    assert!(policy.blocked_ips.contains(&tspu::topology::TOR_ENTRY_NODE));
}

#[test]
fn claim_march4_transition_was_central_and_instant() {
    let universe = Universe::generate(94);
    let lab = VantageLab::builder().universe(&universe).throttle_active(true).quic_filter(false).table1().build();
    // Before: throttling active, no QUIC filter.
    assert!(lab.policy.read().throttle_active);
    assert!(!lab.policy.read().quic_filter);
    // One central call; every device shares the handle.
    lab.policy.march_4_2022_transition();
    assert!(!lab.policy.read().throttle_active);
    assert!(lab.policy.read().quic_filter);
    for vantage in &lab.vantages {
        let device = lab.net.middlebox(vantage.sym_device);
        assert!(device.policy().read().quic_filter, "{}", vantage.name);
    }
}
