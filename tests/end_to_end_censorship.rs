//! Cross-crate integration: full censorship scenarios through the Fig. 1
//! lab, exercising wire + netsim + core + stack + registry + topology
//! together.

use std::time::Duration;

use tspu::registry::Universe;
use tspu::stack::{ClientOutcome, PortBehavior, ServerApp, ServerPort, TcpClient, TcpClientConfig};
use tspu::topology::VantageLab;
use tspu::wire::tls::ClientHelloBuilder;

fn fetch(lab: &mut VantageLab, vantage: &str, port: u16, domain: &str) -> ClientOutcome {
    let (host, addr) = {
        let v = lab.vantage(vantage);
        (v.host, v.addr)
    };
    let (app, report, syn) = TcpClient::start(TcpClientConfig::new(
        addr,
        port,
        lab.us_main_addr,
        443,
        ClientHelloBuilder::new(domain).build(),
    ));
    lab.net.set_app(host, Box::new(app));
    lab.net.send_from(host, syn);
    lab.net.run_until_idle();
    report.outcome()
}

#[test]
fn blocking_is_uniform_across_isps() {
    // §5.1's attribution criterion: the TSPU blocks the same list, the
    // same way, at every ISP — unlike ISP resolvers.
    let universe = Universe::generate(77);
    let mut lab = VantageLab::builder().universe(&universe).table1().build();
    lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(lab.us_main_addr)));

    for (i, vantage) in ["Rostelecom", "ER-Telecom", "OBIT"].iter().enumerate() {
        let port = 30_000 + i as u16 * 10;
        assert_eq!(fetch(&mut lab, vantage, port, "twitter.com"), ClientOutcome::Reset, "{vantage}");
        assert_eq!(fetch(&mut lab, vantage, port + 1, "bbc.com"), ClientOutcome::Reset, "{vantage}");
        assert_eq!(
            fetch(&mut lab, vantage, port + 2, "rust-lang.org"),
            ClientOutcome::GotData,
            "{vantage}"
        );
    }

    // The resolvers, by contrast, disagree with each other on recent
    // registry entries.
    let recent: Vec<&str> = universe
        .registry_sample
        .iter()
        .take(300)
        .map(|d| d.name.as_str())
        .collect();
    let counts: Vec<usize> = lab
        .resolvers
        .iter()
        .map(|r| recent.iter().filter(|d| r.lists(d)).count())
        .collect();
    assert!(counts.iter().collect::<std::collections::HashSet<_>>().len() > 1, "{counts:?}");
}

#[test]
fn central_policy_update_applies_everywhere_at_once() {
    // The March 2022 pattern: Roskomnadzor adds a domain and every device
    // in the country enforces it immediately.
    let universe = Universe::generate(78);
    let mut lab = VantageLab::builder().universe(&universe).table1().build();
    lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(lab.us_main_addr)));

    assert_eq!(fetch(&mut lab, "OBIT", 31_000, "newsite.example"), ClientOutcome::GotData);
    lab.policy.update(|p| p.sni_rst.insert("newsite.example"));
    assert_eq!(fetch(&mut lab, "OBIT", 31_001, "newsite.example"), ClientOutcome::Reset);
    assert_eq!(fetch(&mut lab, "Rostelecom", 31_002, "newsite.example"), ClientOutcome::Reset);
    assert_eq!(fetch(&mut lab, "ER-Telecom", 31_003, "newsite.example"), ClientOutcome::Reset);
}

#[test]
fn residual_censorship_and_fresh_ports() {
    // §3: tests reuse fresh source ports because verdicts stick to the
    // 5-tuple for their residual duration.
    let universe = Universe::generate(79);
    let mut lab = VantageLab::builder().universe(&universe).table1().build();
    lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(lab.us_main_addr)));

    assert_eq!(fetch(&mut lab, "ER-Telecom", 32_000, "meduza.io"), ClientOutcome::Reset);
    // Same port, innocuous SNI, within the 75 s residual: still reset.
    assert_eq!(fetch(&mut lab, "ER-Telecom", 32_000, "rust-lang.org"), ClientOutcome::Reset);
    // Fresh port: clean.
    assert_eq!(fetch(&mut lab, "ER-Telecom", 32_001, "rust-lang.org"), ClientOutcome::GotData);
    // Same port after the residual expires: clean again.
    lab.net.run_for(Duration::from_secs(481));
    assert_eq!(fetch(&mut lab, "ER-Telecom", 32_000, "rust-lang.org"), ClientOutcome::GotData);
}

#[test]
fn datacenter_style_path_sees_no_censorship() {
    // §3: "all data center VPSes we rent show little to no signs of
    // censorship" — the Paris machine (no TSPU on its path to the US)
    // fetches blocked domains freely.
    let universe = Universe::generate(80);
    let mut lab = VantageLab::builder().universe(&universe).table1().build();
    lab.net.set_app(lab.us_main, Box::new(ServerApp::https_site(lab.us_main_addr)));
    let (app, report, syn) = TcpClient::start(TcpClientConfig::new(
        lab.paris_addr,
        33_000,
        lab.us_main_addr,
        443,
        ClientHelloBuilder::new("twitter.com").build(),
    ));
    lab.net.set_app(lab.paris, Box::new(app));
    lab.net.send_from(lab.paris, syn);
    lab.net.run_until_idle();
    assert_eq!(report.outcome(), ClientOutcome::GotData);
}

#[test]
fn server_side_strategies_help_unmodified_clients() {
    // §8 deployed at the site: an unmodified client reaches an SNI-I
    // blocked site when the server uses the split handshake or a small
    // window.
    let universe = Universe::generate(81);
    let mut lab = VantageLab::builder().universe(&universe).table1().build();
    for (port_cfg, client_port) in [
        (ServerPort::new(443, PortBehavior::TlsServer).split_handshake(), 34_000u16),
        (ServerPort::new(443, PortBehavior::TlsServer).small_window(64), 34_001),
    ] {
        lab.net.set_app(
            lab.us_main,
            Box::new(ServerApp::new(lab.us_main_addr).with_port(port_cfg)),
        );
        let outcome = fetch(&mut lab, "ER-Telecom", client_port, "meduza.io");
        assert_eq!(outcome, ClientOutcome::GotData);
        lab.net.run_for(Duration::from_secs(481));
    }
}

#[test]
fn two_devices_on_path_compound_reliability() {
    // Table 1's explanation: Rostelecom's path crosses two devices, so a
    // mechanism both can enforce (SNI-II upstream drops) fails only when
    // both roll a failure.
    let universe = Universe::generate(82);
    let mut lab = VantageLab::builder().universe(&universe).table1().build();
    let er = tspu::measure::reliability::run_cell(
        &mut lab,
        "ER-Telecom",
        tspu::measure::reliability::Mechanism::Sni2,
        800,
    );
    let ro = tspu::measure::reliability::run_cell(
        &mut lab,
        "Rostelecom",
        tspu::measure::reliability::Mechanism::Sni2,
        800,
    );
    assert!(er.failures >= ro.failures, "ER {} vs RO {}", er.failures, ro.failures);
}
