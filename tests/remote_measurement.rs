//! Cross-crate integration: the remote measurement pipeline scored
//! against topology ground truth — the reproduction's answer to "do the
//! paper's techniques actually find what is there?"

use tspu::measure::{echo, fragscan, traceroute};
use tspu::registry::Universe;
use tspu::topology::{Runet, RunetConfig};

fn runet(seed: u64) -> Runet {
    let universe = Universe::generate(5);
    Runet::generate(&universe, RunetConfig::tiny(seed))
}

#[test]
fn fragmentation_fingerprint_has_high_precision_and_recall() {
    let mut net = runet(41);
    let targets: Vec<_> = net.endpoints.iter().filter(|e| !e.behind_nat).take(220).cloned().collect();
    let (mut tp, mut fp, mut fn_, mut tn) = (0u32, 0u32, 0u32, 0u32);
    for (i, e) in targets.iter().enumerate() {
        let verdict = fragscan::fingerprint(&mut net, e.addr, e.port, 3000 + i as u16 * 4);
        if !verdict.responsive() {
            continue;
        }
        match (e.behind_symmetric, verdict.tspu_positive()) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => tn += 1,
        }
    }
    assert!(tp > 10, "need positives in the sample (tp={tp})");
    assert!(tn > 10, "need negatives in the sample (tn={tn})");
    // With reliable devices the fingerprint is essentially exact.
    assert_eq!(fp, 0, "false positives");
    assert_eq!(fn_, 0, "false negatives");
}

#[test]
fn localization_recovers_ground_truth_hops() {
    let mut net = runet(42);
    let covered: Vec<_> = net
        .endpoints
        .iter()
        .filter(|e| e.behind_symmetric && e.tspu_link.is_some() && !e.behind_nat)
        .take(12)
        .cloned()
        .collect();
    assert!(!covered.is_empty());
    for (i, e) in covered.iter().enumerate() {
        let sport = 9000 + i as u16 * 7;
        let flip = fragscan::localize_device_ttl(&mut net, e.addr, e.port, sport, 30)
            .expect("localization flip");
        let path_len = net.net.route(net.scanner, e.host).unwrap().steps.len();
        let measured = path_len + 2 - flip as usize;
        assert_eq!(measured, e.device_hops.unwrap(), "endpoint {:?}", e.addr);

        // And the traceroute + flip name the exact ground-truth link.
        let trace = traceroute::traceroute(&mut net, e.addr, e.port, sport.wrapping_add(3), 30);
        let link = traceroute::identify_link(&trace, flip).expect("link");
        assert_eq!(link.before, e.tspu_link.unwrap().0);
    }
}

#[test]
fn echo_technique_finds_only_upstream_visible_devices() {
    let mut net = runet(43);
    let servers: Vec<_> = net.echo_servers().take(24).cloned().collect();
    assert!(!servers.is_empty());
    for e in servers {
        let result = echo::echo_measurement(&mut net, e.addr, 443);
        let expected = e.behind_upstream_only || e.behind_symmetric;
        // Echo positivity requires a device that (a) sees the server's
        // outbound and (b) infers the server as client. Upstream-only
        // devices qualify; symmetric devices saw the inbound SYN and do
        // not. So positives must be exactly the upstream-only population.
        let expect_positive = e.behind_upstream_only && !e.behind_symmetric;
        assert_eq!(
            result.tspu_positive(),
            expect_positive,
            "{:?} (sym={}, upstream={}, expected-any={expected})",
            e.addr,
            e.behind_symmetric,
            e.behind_upstream_only
        );
    }
}

#[test]
fn table5_correlation_shape_holds() {
    // IP blocking is enforceable by both visibilities; the fragmentation
    // fingerprint only by downstream visibility → IP(B) ⊇ Frag(B) modulo
    // none.
    let mut net = runet(44);
    let targets: Vec<_> = net
        .endpoints
        .iter()
        .filter(|e| e.port == 7547)
        .take(120)
        .cloned()
        .collect();
    let mut frag_b_ip_n = 0u32;
    let mut agreements = 0u32;
    let mut total = 0u32;
    for (i, e) in targets.iter().enumerate() {
        let sport = 21_000 + i as u16 * 6;
        let verdict = fragscan::fingerprint(&mut net, e.addr, e.port, sport);
        if !verdict.responsive() {
            continue;
        }
        let ip = fragscan::ip_block_probe(&mut net, e.addr, e.port, sport.wrapping_add(4));
        let frag = verdict.tspu_positive();
        total += 1;
        if frag == ip {
            agreements += 1;
        }
        if frag && !ip {
            frag_b_ip_n += 1;
        }
    }
    assert!(total > 40, "sample too small: {total}");
    assert_eq!(frag_b_ip_n, 0, "fragment-positive implies IP-positive");
    assert!(
        f64::from(agreements) / f64::from(total) > 0.9,
        "correlation too weak: {agreements}/{total}"
    );
}

#[test]
fn port_scan_shape_matches_fig9() {
    let mut net = runet(45);
    let (rows, _seen, _positive) = fragscan::run_port_scan(&mut net, 2);
    let rate = |p: u16| rows.iter().find(|r| r.port == p).map(|r| r.percent()).unwrap_or(0.0);
    // TR-069 endpoints are far more likely to sit behind a TSPU than
    // server ports (paper: "over 300% more likely").
    assert!(rate(7547) > 2.0 * rate(22).max(1.0), "7547 {} vs 22 {}", rate(7547), rate(22));
    let total: usize = rows.iter().map(|r| r.endpoints).sum();
    let positive: usize = rows.iter().map(|r| r.positive).sum();
    let overall = positive as f64 / total.max(1) as f64;
    assert!((0.10..=0.45).contains(&overall), "overall positivity {overall}");
}
